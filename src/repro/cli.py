"""Command-line interface: regenerate the paper's exhibits.

Usage::

    python -m repro list
    python -m repro analyze gcc [--json]
    python -m repro predict gcc [--json]
    python -m repro point gcc --tc 256 --pb 256 [--static-seed]
    python -m repro stats gcc [--tc 256 --pb 256] [--json]
    python -m repro trace gcc --out trace.json [--events PATH] [--metrics PATH]
    python -m repro figure5 --benchmarks gcc go --jobs 4 [--stats-json PATH]
    python -m repro tables [--jobs N] [--benchmarks ...]
    python -m repro figure6 [--jobs N] [--benchmarks ...]
    python -m repro figure8 [--jobs N] [--benchmarks ...]
    python -m repro dynamic --benchmarks gcc go
    python -m repro compare --benchmarks gcc --mechanisms preconstruction,mana
    python -m repro all --jobs 4 [--timing-report timing.json]
    python -m repro bench [--quick] [--check BENCH_hotpath.json]
    python -m repro fuzz --seeds 100 [--budget 8000] [--oracle NAME ...]
    python -m repro diff run_a.json run_b.json [--json]
    python -m repro report --metrics m.jsonl --bench BENCH_quick.json -o out.html
    python -m repro cache [--clear]
    python -m repro all --telemetry-json telemetry.json
    python -m repro telemetry [DUMP] [--openmetrics | --json]
    python -m repro profile [--pstats out.pstats] bench --quick

Observability: ``repro stats`` and ``repro trace`` run one frontend
point with the :mod:`repro.obs` event bus attached — ``stats`` prints
the counter summary plus interval histograms, ``trace`` exports a
Chrome/Perfetto ``trace.json`` of the engine timeline (plus optional
raw ``events.jsonl`` / ``metrics.jsonl``).  ``-v``/``--log-level``
configure stdlib logging for every command.

Host-domain telemetry (:mod:`repro.telemetry`) is the wall-clock
mirror: ``--telemetry-json`` on ``all``/``bench``/``fuzz``/``compare``
traces the scheduler, result cache and workload generation (spans +
metrics registry, propagated across worker processes), ``repro
telemetry`` prints the last dump, ``repro profile <cmd>`` wraps any
command in ``cProfile``, and ``repro --profile`` captures a per-point
profile into the run manifests.  Telemetry is off — and free — by
default, and never perturbs results: ``repro all`` output is
byte-identical either way.

Every exhibit command routes through :mod:`repro.runner`: points are
described as :class:`ExperimentSpec` batches, deduplicated, served
from the content-addressed result cache when inputs are unchanged
(disable with ``--no-cache``, relocate with ``--cache-dir``), and
fanned out across ``--jobs`` worker processes grouped by benchmark.
Output is bit-identical regardless of ``--jobs`` — results merge in
spec order.  ``repro all`` regenerates every exhibit through a single
scheduler pass and can write its timing report for CI artifacts.

The instruction budget precedence is ``--instructions`` >
``REPRO_INSTRUCTIONS`` env > built-in default (60 000).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.analysis import (
    figure5_points,
    figure5_specs,
    figure6_from_results,
    figure6_specs,
    figure8_from_results,
    figure8_specs,
    format_all_tables,
    format_figure5,
    format_figure6,
    format_figure8,
    tables_from_results,
    tables_specs,
)
from repro.analysis.figures import SPEEDUP_BENCHMARKS
from repro.analysis.tables import TABLE_BENCHMARKS
from repro.runner import (
    ExperimentRunner,
    ExperimentSpec,
    ResultCache,
    RunResult,
    resolve_instructions,
    run_point,
    stderr_progress,
)
from repro.workloads import SPEC95_NAMES

DYNAMIC_BENCHMARKS = ("gcc", "go")
#: The (TC, PB) split the dynamic-partition exhibit compares against.
DYNAMIC_SPLIT = (384, 128)

Lookup = dict[ExperimentSpec, RunResult]
Exhibit = tuple[str, list[ExperimentSpec], Callable[[Lookup], str]]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Trace Preconstruction (ISCA 2000) reproduction")
    parser.add_argument("--instructions", type=int, default=None,
                        help="instruction budget per simulation run "
                             "(default: REPRO_INSTRUCTIONS env, else 60000)")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory (default: "
                             "REPRO_CACHE_DIR env, else ~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the result cache")
    parser.add_argument("--profile", action="store_true",
                        help="capture a cProfile per executed sweep point "
                             "(written under --profile-dir)")
    parser.add_argument("--profile-dir", default=None, metavar="DIR",
                        help="directory for per-point .pstats captures "
                             "(implies --profile; default: profiles)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="increase log verbosity (-v info, -vv debug)")
    parser.add_argument("--log-level", default=None,
                        choices=("debug", "info", "warning", "error",
                                 "critical"),
                        help="explicit log level (overrides -v)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the SPECint95 stand-in benchmarks")

    analyze = sub.add_parser(
        "analyze", help="static analysis + lint report for one benchmark")
    analyze.add_argument("benchmark", choices=SPEC95_NAMES)
    analyze.add_argument("--json", action="store_true",
                         help="emit the full report as deterministic JSON")

    predict = sub.add_parser(
        "predict", help="static trace-coverage prediction for one "
                        "benchmark (predicted start points, working set "
                        "and per-region footprints)")
    predict.add_argument("benchmark", choices=SPEC95_NAMES)
    predict.add_argument("--json", action="store_true",
                         help="emit the prediction as deterministic JSON")

    point = sub.add_parser("point", help="one frontend configuration point")
    point.add_argument("benchmark", choices=SPEC95_NAMES)
    point.add_argument("--tc", type=int, default=256,
                       help="trace cache entries")
    point.add_argument("--pb", type=int, default=0,
                       help="preconstruction buffer entries (0 = none)")
    point.add_argument("--static-seed", action="store_true",
                       help="prime the start-point stack with statically "
                            "computed region seeds")

    def observed_args(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("benchmark", choices=SPEC95_NAMES)
        cmd.add_argument("--tc", type=int, default=256,
                         help="trace cache entries")
        cmd.add_argument("--pb", type=int, default=256,
                         help="preconstruction buffer entries (0 = none)")
        cmd.add_argument("--static-seed", action="store_true",
                         help="prime the start-point stack with statically "
                              "computed region seeds")
        cmd.add_argument("--bucket-cycles", type=int, default=1024,
                         help="interval-metrics bucket width in cycles")

    stats = sub.add_parser(
        "stats", help="run one observed point: counter summary, interval "
                      "metrics and histograms")
    observed_args(stats)
    stats.add_argument("--json", action="store_true",
                       help="emit metrics + histograms as JSON")

    trace = sub.add_parser(
        "trace", help="run one observed point and export a Chrome/Perfetto "
                      "trace of the engine timeline")
    observed_args(trace)
    trace.add_argument("--out", default="trace.json", metavar="PATH",
                       help="Perfetto trace-event JSON output "
                            "(default: trace.json)")
    trace.add_argument("--events", default=None, metavar="PATH",
                       help="also write the raw event stream as JSONL")
    trace.add_argument("--metrics", default=None, metavar="PATH",
                       help="also write interval metrics as JSONL")

    from repro.runner import SIMULATOR_KINDS

    def simulator_arg(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--simulator", choices=SIMULATOR_KINDS,
                         default="scalar",
                         help="frontend simulation kernel: the original "
                              "scalar one or the batched struct-of-arrays "
                              "one (result-identical; default: scalar)")

    for name, helptext in (
            ("figure5", "miss rate vs combined TC+PB size"),
            ("tables", "Tables 1-3: I-cache traffic"),
            ("figure6", "speedup from preconstruction"),
            ("figure8", "extended pipeline speedups"),
            ("dynamic", "dynamic-partition extension experiment")):
        cmd = sub.add_parser(name, help=helptext)
        cmd.add_argument("--jobs", type=int, default=1,
                         help="worker processes (grouped by benchmark)")
        cmd.add_argument("--benchmarks", nargs="+", choices=SPEC95_NAMES,
                         default=None,
                         help="restrict the exhibit to these benchmarks "
                              "(intersected with its default set)")
        cmd.add_argument("--stats-json", default=None, metavar="PATH",
                         help="dump every point's raw counter summary "
                              "as JSON")
        simulator_arg(cmd)

    from repro.frontends import mechanism_names

    compare = sub.add_parser(
        "compare", help="head-to-head frontend-mechanism comparison at "
                        "equal storage budgets")
    compare.add_argument("--benchmarks", nargs="+", choices=SPEC95_NAMES,
                         default=["gcc"],
                         help="benchmarks to compare on (default: gcc)")
    compare.add_argument("--mechanisms", default=None, metavar="NAMES",
                         help="comma-separated mechanism names "
                              f"(default: all of "
                              f"{','.join(mechanism_names())})")
    compare.add_argument("--tc", type=int, default=256,
                         help="trace cache entries (default: 256)")
    compare.add_argument("--pb", type=int, nargs="+", default=None,
                         metavar="N",
                         help="mechanism storage budgets in 64-byte "
                              "entries (default: 32 128 256)")
    compare.add_argument("--jobs", type=int, default=1,
                         help="worker processes (grouped by benchmark)")
    compare.add_argument("--json", action="store_true",
                         help="emit the comparison rows as JSON")
    simulator_arg(compare)

    allcmd = sub.add_parser(
        "all", help="regenerate every paper exhibit in one scheduler pass")
    allcmd.add_argument("--jobs", type=int, default=1,
                        help="worker processes (grouped by benchmark)")
    allcmd.add_argument("--benchmarks", nargs="+", choices=SPEC95_NAMES,
                        default=None,
                        help="restrict every exhibit to these benchmarks "
                             "(intersected with each exhibit's default set)")
    allcmd.add_argument("--timing-report", default=None, metavar="PATH",
                        help="write the scheduler timing report as JSON")
    allcmd.add_argument("--stats-json", default=None, metavar="PATH",
                        help="dump every point's raw counter summary "
                             "as JSON")
    simulator_arg(allcmd)

    def telemetry_arg(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--telemetry-json", default=None, metavar="PATH",
                         help="enable host-domain telemetry and write the "
                              "span/metrics dump as JSON")

    telemetry_arg(allcmd)
    telemetry_arg(compare)

    bench = sub.add_parser(
        "bench", help="time the hot path cold against the seeded baseline")
    bench.add_argument("--quick", action="store_true",
                       help="gcc+go Figure-5 panel at 20k instructions "
                            "(the CI configuration)")
    bench.add_argument("--jobs", type=int, default=1,
                       help="worker processes (speedup vs baseline is "
                            "only meaningful at jobs=1)")
    bench.add_argument("--output", default="BENCH_hotpath.json",
                       metavar="PATH",
                       help="where to write the JSON report "
                            "(default: BENCH_hotpath.json)")
    bench.add_argument("--check", default=None, metavar="PATH",
                       help="compare against a pinned bench report and "
                            "fail if any section regresses past "
                            "--tolerance")
    bench.add_argument("--tolerance", type=float, default=0.5,
                       help="allowed fractional slowdown vs the --check "
                            "reference (default: 0.5 = +50%%)")
    bench.add_argument("--repro-script", default="bench_regression_repro.py",
                       metavar="PATH",
                       help="where a failing --check writes its minimized "
                            "standalone repro script "
                            "(default: bench_regression_repro.py)")
    bench.add_argument("--trajectory", default=None, metavar="PATH",
                       help="append this run to a bench history JSONL "
                            "(default: BENCH_trajectory.jsonl)")
    bench.add_argument("--no-trajectory", action="store_true",
                       help="do not append this run to the bench history")
    bench.add_argument("--perfetto", default=None, metavar="PATH",
                       help="write a merged host+sim Perfetto trace "
                            "(implies telemetry)")
    simulator_arg(bench)
    telemetry_arg(bench)

    from repro.check.oracles import oracle_names

    fuzz = sub.add_parser(
        "fuzz", help="differential validation: fuzz randomized workloads "
                     "through the cross-model oracle catalogue")
    fuzz.add_argument("--seeds", type=int, default=25,
                      help="number of fuzz cases (default: 25)")
    fuzz.add_argument("--seed-base", type=int, default=0,
                      help="first case seed (cases are seed-base..+seeds-1)")
    fuzz.add_argument("--budget", type=int, default=None,
                      help="instructions per case (default: 8000; "
                           "independent of the global --instructions)")
    fuzz.add_argument("--oracle", action="append", dest="oracles",
                      choices=oracle_names(), default=None, metavar="NAME",
                      help="restrict the verdict to these oracles "
                           "(repeatable; default: all of "
                           f"{', '.join(oracle_names())})")
    fuzz.add_argument("--jobs", type=int, default=1,
                      help="worker processes (grouped per case)")
    fuzz.add_argument("--no-minimize", action="store_true",
                      help="report failures without shrinking them")
    fuzz.add_argument("--failures-dir", default="fuzz-failures",
                      metavar="DIR",
                      help="write a self-contained repro script per "
                           "minimized failure (default: fuzz-failures; "
                           "the directory is only created on failure)")
    fuzz.add_argument("--json", action="store_true",
                      help="emit the fuzz report as JSON")
    fuzz.add_argument("--simulator", choices=SIMULATOR_KINDS, default=None,
                      help="force every case onto one frontend kernel "
                           "(default: each case draws its kernel from "
                           "its seed)")
    telemetry_arg(fuzz)

    diff = sub.add_parser(
        "diff", help="localize the first divergence between two runs "
                     "(captures, run manifests, or spec JSON)")
    diff.add_argument("run_a", metavar="MANIFEST_A",
                      help="first run: a triage capture, a RunResult/"
                           "cache-entry JSON, or a bare spec JSON")
    diff.add_argument("run_b", metavar="MANIFEST_B",
                      help="second run, same accepted shapes")
    diff.add_argument("--bucket-cycles", type=int, default=1024,
                      help="interval bucket width for re-executed runs "
                           "(pre-built captures keep their own)")
    diff.add_argument("--json", action="store_true",
                      help="emit the diff result as JSON")

    reportcmd = sub.add_parser(
        "report", help="self-contained static HTML dashboard for a "
                       "run set")
    reportcmd.add_argument("--metrics", action="append", default=[],
                           metavar="PATH",
                           help="metrics.jsonl file (repeatable)")
    reportcmd.add_argument("--bench", action="append", default=[],
                           metavar="PATH",
                           help="BENCH_*.json report (repeatable)")
    reportcmd.add_argument("--perfetto", action="append", default=[],
                           metavar="PATH",
                           help="Perfetto trace.json to deep-link "
                                "(repeatable)")
    reportcmd.add_argument("--trajectory", action="append", default=[],
                           metavar="PATH",
                           help="BENCH_trajectory.jsonl history for the "
                                "trajectory panel (repeatable)")
    reportcmd.add_argument("--title", default=None,
                           help="dashboard title")
    reportcmd.add_argument("-o", "--output", default="report.html",
                           metavar="PATH",
                           help="output HTML file (default: report.html)")

    cachecmd = sub.add_parser("cache", help="inspect the result cache")
    cachecmd.add_argument("--clear", action="store_true",
                          help="delete every cached result")

    telemetrycmd = sub.add_parser(
        "telemetry", help="print a telemetry dump: span tree and "
                          "metrics registry")
    telemetrycmd.add_argument("input", nargs="?", default=None,
                              metavar="DUMP",
                              help="telemetry dump JSON (default: "
                                   "<cache-root>/last_telemetry.json)")
    telemetrycmd.add_argument("--openmetrics", action="store_true",
                              help="print the metrics registry as "
                                   "OpenMetrics text")
    telemetrycmd.add_argument("--json", action="store_true",
                              help="print the raw dump as canonical JSON")

    profilecmd = sub.add_parser(
        "profile", help="run another repro command under cProfile and "
                        "print a hotspot summary")
    profilecmd.add_argument("--pstats", default=None, metavar="PATH",
                            help="also write the raw .pstats capture")
    profilecmd.add_argument("--top", type=int, default=15,
                            help="hotspot rows to print (default: 15)")
    profilecmd.add_argument("wrapped", nargs=argparse.REMAINDER,
                            metavar="CMD",
                            help="the repro command line to profile")
    return parser


# ----------------------------------------------------------------------
# Exhibit sections (shared by the single commands and ``repro all``)
# ----------------------------------------------------------------------
def _restrict(defaults: Sequence[str],
              selected: Optional[Sequence[str]]) -> list[str]:
    """Intersect an exhibit's default benchmark set with a user filter
    (falling back to the defaults when the intersection is empty)."""
    if selected is None:
        return list(defaults)
    restricted = [b for b in defaults if b in selected]
    return restricted or list(defaults)


def _dynamic_specs(benchmark: str, instructions: int
                   ) -> tuple[ExperimentSpec, ExperimentSpec]:
    tc, pb = DYNAMIC_SPLIT
    static = ExperimentSpec(benchmark=benchmark, tc_entries=tc,
                            pb_entries=pb, instructions=instructions)
    return static, static.replace(kind="dynamic")


def _figure5_exhibit(benchmarks: Sequence[str], instructions: int) -> Exhibit:
    specs = [spec for benchmark in benchmarks
             for spec in figure5_specs(benchmark, instructions)]

    def render(lookup: Lookup) -> str:
        blocks = []
        for benchmark in benchmarks:
            panel = figure5_specs(benchmark, instructions)
            blocks.append(format_figure5(
                benchmark, figure5_points([lookup[s] for s in panel])))
        return "\n\n".join(blocks)

    return "figure5", specs, render


def _tables_exhibit(benchmarks: Sequence[str], instructions: int) -> Exhibit:
    specs = tables_specs(instructions, benchmarks)

    def render(lookup: Lookup) -> str:
        return format_all_tables(
            tables_from_results([lookup[s] for s in specs], benchmarks))

    return "tables", specs, render


def _figure6_exhibit(benchmarks: Sequence[str], instructions: int) -> Exhibit:
    specs = figure6_specs(instructions, benchmarks)

    def render(lookup: Lookup) -> str:
        return format_figure6(
            figure6_from_results([lookup[s] for s in specs]))

    return "figure6", specs, render


def _figure8_exhibit(benchmarks: Sequence[str], instructions: int) -> Exhibit:
    specs = figure8_specs(instructions, benchmarks)

    def render(lookup: Lookup) -> str:
        return format_figure8(
            figure8_from_results([lookup[s] for s in specs]))

    return "figure8", specs, render


def _dynamic_exhibit(benchmarks: Sequence[str], instructions: int) -> Exhibit:
    pairs = [_dynamic_specs(benchmark, instructions)
             for benchmark in benchmarks]
    specs = [spec for pair in pairs for spec in pair]

    def render(lookup: Lookup) -> str:
        tc, pb = DYNAMIC_SPLIT
        lines = []
        for benchmark, (static, dynamic) in zip(benchmarks, pairs):
            static_miss = lookup[static].metrics["trace_misses_per_ki"]
            moving = lookup[dynamic].metrics
            lines.append(
                f"{benchmark}: static({tc}+{pb})={static_miss:.2f} miss/KI, "
                f"dynamic={moving['trace_misses_per_ki']:.2f} miss/KI, "
                f"trajectory={moving['pb_trajectory']}")
        return "\n".join(lines)

    return "dynamic", specs, render


def _plan(command: str, instructions: int,
          selected: Optional[Sequence[str]]) -> list[Exhibit]:
    """The exhibits a command regenerates, in presentation order."""
    builders = {
        "figure5": lambda: _figure5_exhibit(
            _restrict(SPEC95_NAMES, selected), instructions),
        "tables": lambda: _tables_exhibit(
            _restrict(TABLE_BENCHMARKS, selected), instructions),
        "figure6": lambda: _figure6_exhibit(
            _restrict(SPEEDUP_BENCHMARKS, selected), instructions),
        "figure8": lambda: _figure8_exhibit(
            _restrict(SPEEDUP_BENCHMARKS, selected), instructions),
        "dynamic": lambda: _dynamic_exhibit(
            _restrict(DYNAMIC_BENCHMARKS, selected), instructions),
    }
    if command == "all":
        return [builders[name]() for name in
                ("figure5", "tables", "figure6", "figure8", "dynamic")]
    return [builders[command]()]


def _apply_simulator(specs: Sequence[ExperimentSpec],
                     simulator: str) -> list[ExperimentSpec]:
    """``specs`` with ``simulator`` applied where the kind supports it.

    Only frontend and check points have a batched kernel; processor and
    dynamic points always run scalar (their spec validation rejects
    anything else), so a mixed exhibit set stays valid under
    ``--simulator vectorized``.
    """
    if simulator == "scalar":
        return list(specs)
    return [spec.replace(simulator=simulator)
            if spec.kind in ("frontend", "check") else spec
            for spec in specs]


def _run_exhibits(args, instructions: int) -> int:
    result_cache = (None if args.no_cache
                    else ResultCache(args.cache_dir))
    selected = getattr(args, "benchmarks", None)
    exhibits = _plan(args.command, instructions, selected)
    specs = [spec for _, exhibit_specs, _ in exhibits
             for spec in exhibit_specs]
    progress = stderr_progress if (args.jobs > 1 or args.command == "all") \
        else None
    runner = ExperimentRunner(jobs=args.jobs, cache=result_cache,
                              progress=progress,
                              profile_dir=_profile_dir(args))
    # Results are keyed by the exhibit's own (scalar) specs so the
    # render closures' lookups match; the simulator is an execution
    # strategy, so the results are interchangeable by construction.
    run_specs = _apply_simulator(specs, getattr(args, "simulator", "scalar"))
    lookup: Lookup = dict(zip(specs, runner.run(run_specs)))
    for index, (_, _, render) in enumerate(exhibits):
        if index:
            print()
        print(render(lookup))
    if args.command in ("figure5", "all"):
        print()
    stats_json = getattr(args, "stats_json", None)
    if stats_json:
        rows = [{"spec": spec.to_dict(), "label": spec.label,
                 "metrics": result.metrics}
                for spec, result in lookup.items()]
        Path(stats_json).write_text(
            json.dumps(rows, indent=2, sort_keys=True) + "\n")
        print(f"wrote {len(rows)} point summaries to {stats_json}",
              file=sys.stderr)
    if result_cache is not None:
        result_cache.record_last_run(args.command,
                                     runner.report.to_dict())
    if args.command == "all":
        report = runner.report
        if args.timing_report:
            Path(args.timing_report).write_text(report.to_json())
        print(f"repro all: {report.summary()}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
def _observed_spec(args, instructions: int) -> ExperimentSpec:
    return ExperimentSpec(benchmark=args.benchmark, tc_entries=args.tc,
                          pb_entries=args.pb, static_seed=args.static_seed,
                          instructions=instructions)


def _run_stats(args, instructions: int) -> int:
    from repro.obs import run_observed

    observed = run_observed(_observed_spec(args, instructions),
                            bucket_cycles=args.bucket_cycles)
    if args.json:
        payload = {
            "manifest": observed.result.manifest,
            "metrics": observed.result.metrics,
            "summary": observed.stats.summary(),
            "histograms": {h.name: h.to_dict()
                           for h in observed.metrics.histograms()},
            "intervals": observed.metrics.interval_rows(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{observed.result.spec.label}  "
          f"({len(observed.events)} events observed)")
    for key, value in sorted(observed.stats.summary().items()):
        print(f"  {key:32s} {value:12.3f}")
    print("histograms:")
    for hist in observed.metrics.histograms():
        if not hist.total:
            print(f"  {hist.name:24s} (empty)")
            continue
        print(f"  {hist.name:24s} n={hist.total:<8d} "
              f"min={hist.min:<8d} mean={hist.mean:<10.2f} "
              f"max={hist.max}")
    return 0


def _run_trace(args, instructions: int) -> int:
    from repro.obs import run_observed, validate_chrome_trace

    observed = run_observed(_observed_spec(args, instructions),
                            bucket_cycles=args.bucket_cycles)
    observed.write_perfetto(args.out)
    trace = json.loads(Path(args.out).read_text())
    problems = validate_chrome_trace(trace)
    if problems:  # pragma: no cover - exporter bug guard
        for problem in problems:
            print(f"invalid trace event: {problem}", file=sys.stderr)
        return 1
    print(f"wrote {len(trace['traceEvents'])} trace events "
          f"({len(observed.events)} observed) to {args.out}")
    if args.events:
        path = observed.write_events(args.events)
        print(f"wrote {len(observed.events)} events to {path}")
    if args.metrics:
        path = observed.write_metrics(args.metrics)
        print(f"wrote interval metrics to {path}")
    return 0


def _profile_dir(args) -> Optional[str]:
    """``--profile-dir`` wins; bare ``--profile`` defaults to
    ``profiles/``; neither means no per-point capture."""
    if getattr(args, "profile_dir", None):
        return str(args.profile_dir)
    if getattr(args, "profile", False):
        return "profiles"
    return None


def _run_profile(args) -> int:
    """``repro profile <cmd>``: re-enter :func:`main` under cProfile."""
    from repro.telemetry import format_hotspots, profile_call

    wrapped = list(args.wrapped)
    if wrapped and wrapped[0] == "--":
        wrapped = wrapped[1:]
    if not wrapped:
        print("profile: no command given (usage: repro profile "
              "[--pstats PATH] [--top N] <command> [args...])",
              file=sys.stderr)
        return 2
    status, rows, written = profile_call(lambda: main(wrapped),
                                         pstats_path=args.pstats,
                                         top=args.top)
    print(format_hotspots(rows), file=sys.stderr)
    if written is not None:
        print(f"pstats written to {written}", file=sys.stderr)
    return status


def _run_telemetry(args) -> int:
    """``repro telemetry``: render a saved dump."""
    from repro.telemetry import (
        LAST_TELEMETRY_FILE,
        MetricsRegistry,
        format_telemetry,
        load_telemetry,
    )

    path = (Path(args.input) if args.input
            else ResultCache(args.cache_dir).root / LAST_TELEMETRY_FILE)
    try:
        payload = load_telemetry(path)
    except (OSError, ValueError) as error:
        print(f"telemetry: cannot read dump {path} ({error}); run a "
              f"command with --telemetry-json first", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.openmetrics:
        registry = MetricsRegistry.from_dict(payload.get("metrics") or {})
        print(registry.to_openmetrics(), end="")
    else:
        print(format_telemetry(payload))
    return 0


def _write_telemetry_outputs(args, tele, telemetry_json) -> None:
    """Persist the session: the requested path plus the cache-root
    copy ``repro telemetry`` reads by default."""
    from repro.telemetry import LAST_TELEMETRY_FILE, write_telemetry

    if telemetry_json:
        path = write_telemetry(tele, telemetry_json)
        print(f"telemetry dump written to {path}", file=sys.stderr)
    if not args.no_cache:
        root = ResultCache(args.cache_dir).root
        try:
            root.mkdir(parents=True, exist_ok=True)
            write_telemetry(tele, root / LAST_TELEMETRY_FILE)
        except OSError:  # pragma: no cover - unwritable cache root
            pass


def _write_bench_perfetto(args) -> int:
    """``repro bench --perfetto``: merge this session's host spans with
    a cycle-domain capture of the first bench point into one trace."""
    from repro.obs import run_observed
    from repro.runner import bench_sections
    from repro.telemetry import (
        current_telemetry,
        validate_merged_trace,
        write_merged_perfetto,
    )

    tele = current_telemetry()
    if tele is None:  # pragma: no cover - main() enables before dispatch
        return 0
    sample = bench_sections(args.quick)[0][1][0]
    with tele.span("bench.observe", label=sample.label):
        observed = run_observed(sample)
    path = write_merged_perfetto(tele.tracer.spans(), observed.events,
                                 args.perfetto)
    trace = json.loads(Path(path).read_text())
    problems = validate_merged_trace(trace)
    if problems:  # pragma: no cover - exporter bug guard
        for problem in problems:
            print(f"invalid merged trace: {problem}", file=sys.stderr)
        return 1
    print(f"merged perfetto trace ({len(trace['traceEvents'])} events, "
          f"host+sim) written to {path}", file=sys.stderr)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    from repro.obs.log import configure_logging, level_from_args

    configure_logging(level_from_args(args.verbose, args.log_level))
    if args.command == "profile":
        return _run_profile(args)
    if args.command == "telemetry":
        return _run_telemetry(args)

    telemetry_json = getattr(args, "telemetry_json", None)
    wants_perfetto = (args.command == "bench"
                      and getattr(args, "perfetto", None))
    if not telemetry_json and not wants_perfetto:
        return _dispatch(args)

    from repro.telemetry import disable_telemetry, enable_telemetry

    tele = enable_telemetry()
    try:
        with tele.span(f"cli.{args.command}"):
            status = _dispatch(args)
        _write_telemetry_outputs(args, tele, telemetry_json)
    finally:
        disable_telemetry()
    return status


def _dispatch(args) -> int:
    if args.command == "list":
        for name in SPEC95_NAMES:
            print(name)
        return 0

    if args.command == "analyze":
        from repro.api import analyze
        from repro.static import format_report

        report = analyze(args.benchmark)
        if args.json:
            print(report.to_json())
        else:
            print(format_report(report))
        return 0 if report.ok else 1

    if args.command == "predict":
        from repro.api import predict
        from repro.static import STATIC_SCHEMA_VERSION, format_prediction

        prediction = predict(args.benchmark)
        if args.json:
            payload = prediction.to_dict()
            payload["name"] = args.benchmark
            payload["schema_version"] = STATIC_SCHEMA_VERSION
            print(json.dumps(payload, sort_keys=True, indent=2))
        else:
            print(format_prediction(prediction, name=args.benchmark))
        return 0 if prediction.complete else 1

    if args.command == "cache":
        cache = ResultCache(args.cache_dir)
        if args.clear:
            print(f"removed {cache.clear()} cached results from "
                  f"{cache.root}")
            return 0
        rows = cache.entry_info()
        total = sum(row["size_bytes"] for row in rows)
        print(f"cache root: {cache.root}")
        print(f"entries:    {len(rows)}")
        print(f"bytes:      {total}")
        stale = cache.stale_temps()
        if stale:
            print(f"stale temp files: {len(stale)} "
                  f"(stranded by killed runs; reclaim with --clear)")
        for row in rows:
            if "error" in row:
                detail = row["error"]
            else:
                detail = (f"{row['label']}  "
                          f"v{row['package_version'] or '?'}  "
                          f"{row['created_at'] or 'undated'}")
            print(f"  {row['digest'][:12]}  {row['schema']:4s} "
                  f"{row['size_bytes']:8d}B  {detail}")
        last = cache.last_run()
        if last:
            print(f"last run:   {last['command']} at {last['recorded_at']} "
                  f"— {last['requested']} requested, "
                  f"{last['unique']} unique, "
                  f"{last['cache_hits']} cache hits, "
                  f"{last['executed']} executed, "
                  f"{last['stores']} stored "
                  f"({last['wall_seconds']:.2f}s)")
        return 0

    if args.command == "bench":
        from repro.runner import (
            TRAJECTORY_FILE,
            append_trajectory,
            check_bench,
            format_bench,
            regressed_sections,
            run_bench,
            trajectory_reference,
            write_bench_repro,
            write_bench_report,
        )

        payload = run_bench(quick=args.quick, jobs=args.jobs,
                            progress=stderr_progress,
                            profile_dir=_profile_dir(args),
                            simulator=args.simulator)
        path = write_bench_report(payload, args.output)
        print(format_bench(payload))
        print(f"report written to {path}", file=sys.stderr)
        # Resolve the --check reference *before* appending to the
        # trajectory — a .jsonl reference means "the last recorded run
        # of this mode", never the run that just finished.
        reference = None
        if args.check:
            check_path = Path(args.check)
            if check_path.suffix == ".jsonl":
                reference = trajectory_reference(check_path,
                                                 payload["mode"])
                if reference is None:
                    print(f"bench --check: no {payload['mode']!r} rows "
                          f"in trajectory {check_path}", file=sys.stderr)
                    return 1
            elif not check_path.is_file():
                print(f"bench --check: reference report not found: "
                      f"{check_path}", file=sys.stderr)
                return 1
            else:
                reference = json.loads(check_path.read_text())
        if not args.no_trajectory:
            trajectory = append_trajectory(
                payload, args.trajectory or TRAJECTORY_FILE)
            print(f"trajectory appended to {trajectory}",
                  file=sys.stderr)
        if args.perfetto:
            status = _write_bench_perfetto(args)
            if status:
                return status
        if reference is not None:
            problems = check_bench(payload, reference,
                                   tolerance=args.tolerance)
            if problems:
                for problem in problems:
                    print(f"bench regression: {problem}", file=sys.stderr)
                if regressed_sections(payload, reference, args.tolerance):
                    script = write_bench_repro(payload, reference,
                                               args.tolerance,
                                               args.repro_script)
                    print(f"bench regression repro script: {script}",
                          file=sys.stderr)
                return 1
            print(f"bench check vs {args.check}: "
                  f"within +{args.tolerance:.0%}", file=sys.stderr)
        return 0

    if args.command == "fuzz":
        from repro.check import DEFAULT_CHECK_INSTRUCTIONS, run_fuzz

        cache = None if args.no_cache else ResultCache(args.cache_dir)
        budget = (args.budget if args.budget is not None
                  else DEFAULT_CHECK_INSTRUCTIONS)
        progress = stderr_progress if args.jobs > 1 else None
        fuzz_report = run_fuzz(
            args.seeds, budget, seed_base=args.seed_base,
            oracles=args.oracles, jobs=args.jobs, cache=cache,
            progress=progress, minimize=not args.no_minimize,
            failures_dir=args.failures_dir, simulator=args.simulator)
        if args.json:
            print(json.dumps(fuzz_report.to_dict(), indent=2,
                             sort_keys=True))
        else:
            print(fuzz_report.format())
        return 0 if fuzz_report.ok else 1

    if args.command == "diff":
        from repro.triage import diff_paths

        cache = None if args.no_cache else ResultCache(args.cache_dir)
        try:
            diff = diff_paths(args.run_a, args.run_b, cache=cache,
                              bucket_cycles=args.bucket_cycles)
        except (OSError, ValueError) as error:
            print(f"diff: {error}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(diff.to_dict(), indent=2, sort_keys=True))
        else:
            print(diff.format())
        return 0 if diff.identical else 1

    if args.command == "report":
        from repro.triage import write_report

        try:
            path = write_report(args.output, metrics=args.metrics,
                                bench=args.bench, traces=args.perfetto,
                                trajectory=args.trajectory,
                                title=args.title)
        except (OSError, ValueError) as error:
            print(f"report: {error}", file=sys.stderr)
            return 2
        print(f"wrote {path} ({path.stat().st_size} bytes)")
        return 0

    instructions = resolve_instructions(args.instructions)
    if args.command == "compare":
        from repro.analysis import (
            COMPARE_PB_SIZES,
            compare_sweep,
            format_compare,
            rows_to_dicts,
        )

        cache = None if args.no_cache else ResultCache(args.cache_dir)
        mechanisms = (None if args.mechanisms is None
                      else [name.strip()
                            for name in args.mechanisms.split(",")
                            if name.strip()])
        pb_sizes = tuple(args.pb) if args.pb else COMPARE_PB_SIZES
        progress = stderr_progress if args.jobs > 1 else None
        try:
            rows = compare_sweep(args.benchmarks, mechanisms,
                                 tc_entries=args.tc, pb_sizes=pb_sizes,
                                 instructions=instructions, jobs=args.jobs,
                                 result_cache=cache, progress=progress,
                                 simulator=args.simulator)
        except ValueError as error:
            print(f"compare: {error}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(rows_to_dicts(rows), indent=2, sort_keys=True))
        else:
            print(format_compare(rows, instructions))
        return 0

    if args.command == "stats":
        return _run_stats(args, instructions)
    if args.command == "trace":
        return _run_trace(args, instructions)
    if args.command == "point":
        spec = ExperimentSpec(benchmark=args.benchmark, tc_entries=args.tc,
                              pb_entries=args.pb,
                              static_seed=args.static_seed,
                              instructions=instructions)
        cache = None if args.no_cache else ResultCache(args.cache_dir)
        result = run_point(spec, cache=cache)
        for key, value in result.metrics.items():
            print(f"{key:32s} {value:12.3f}")
        return 0

    if args.command in ("figure5", "tables", "figure6", "figure8",
                        "dynamic", "all"):
        return _run_exhibits(args, instructions)
    return 1  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
