"""Command-line interface: regenerate the paper's exhibits.

Usage::

    python -m repro list
    python -m repro analyze gcc [--json]
    python -m repro point gcc --tc 256 --pb 256 [--static-seed]
    python -m repro figure5 --benchmarks gcc go --instructions 60000
    python -m repro tables
    python -m repro figure6
    python -m repro figure8
    python -m repro dynamic --benchmarks gcc go

Each command prints the corresponding table/figure in the layout used
by EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import (
    StreamCache,
    compute_tables,
    figure5_sweep,
    figure6,
    figure8,
    format_all_tables,
    format_figure5,
    format_figure6,
    format_figure8,
    frontend_config,
    run_frontend_point,
)
from repro.sim import run_dynamic_frontend, run_frontend
from repro.workloads import SPEC95_NAMES


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Trace Preconstruction (ISCA 2000) reproduction")
    parser.add_argument("--instructions", type=int, default=60_000,
                        help="instruction budget per simulation run")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the SPECint95 stand-in benchmarks")

    analyze = sub.add_parser(
        "analyze", help="static analysis + lint report for one benchmark")
    analyze.add_argument("benchmark", choices=SPEC95_NAMES)
    analyze.add_argument("--json", action="store_true",
                         help="emit the full report as deterministic JSON")

    point = sub.add_parser("point", help="one frontend configuration point")
    point.add_argument("benchmark", choices=SPEC95_NAMES)
    point.add_argument("--tc", type=int, default=256,
                       help="trace cache entries")
    point.add_argument("--pb", type=int, default=0,
                       help="preconstruction buffer entries (0 = none)")
    point.add_argument("--static-seed", action="store_true",
                       help="prime the start-point stack with statically "
                            "computed region seeds")

    for name, helptext in (
            ("figure5", "miss rate vs combined TC+PB size"),
            ("tables", "Tables 1-3: I-cache traffic"),
            ("figure6", "speedup from preconstruction"),
            ("figure8", "extended pipeline speedups"),
            ("dynamic", "dynamic-partition extension experiment")):
        cmd = sub.add_parser(name, help=helptext)
        if name in ("figure5", "dynamic"):
            cmd.add_argument("--benchmarks", nargs="+",
                             choices=SPEC95_NAMES,
                             default=list(SPEC95_NAMES)
                             if name == "figure5" else ["gcc", "go"])
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.command == "list":
        for name in SPEC95_NAMES:
            print(name)
        return 0

    if args.command == "analyze":
        from repro.static import analyze_image, format_report
        from repro.workloads import build_workload

        workload = build_workload(args.benchmark)
        report = analyze_image(workload.image,
                               intents=workload.branch_intents,
                               name=args.benchmark)
        if args.json:
            print(report.to_json())
        else:
            print(format_report(report))
        return 0 if report.ok else 1

    cache = StreamCache(instructions=args.instructions)
    if args.command == "point":
        stats = run_frontend_point(cache, args.benchmark, args.tc, args.pb,
                                   static_seed=args.static_seed)
        for key, value in stats.summary().items():
            print(f"{key:32s} {value:12.3f}")
        return 0
    if args.command == "figure5":
        for benchmark in args.benchmarks:
            points = figure5_sweep(cache, benchmark)
            print(format_figure5(benchmark, points))
            print()
        return 0
    if args.command == "tables":
        print(format_all_tables(compute_tables(cache)))
        return 0
    if args.command == "figure6":
        print(format_figure6(figure6(cache)))
        return 0
    if args.command == "figure8":
        print(format_figure8(figure8(cache)))
        return 0
    if args.command == "dynamic":
        for benchmark in args.benchmarks:
            image = cache.image(benchmark)
            stream = cache.stream(benchmark)
            static = run_frontend(image, frontend_config(384, 128),
                                  len(stream), stream=stream)
            dynamic, events = run_dynamic_frontend(
                image, frontend_config(384, 128), stream)
            print(f"{benchmark}: static(384+128)="
                  f"{static.stats.trace_miss_rate_per_ki:.2f} miss/KI, "
                  f"dynamic={dynamic.stats.trace_miss_rate_per_ki:.2f} "
                  f"miss/KI, trajectory="
                  f"{[event.pb_entries for event in events]}")
        return 0
    return 1  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
