"""Concrete dataflow analyses over the recovered CFG.

Four analyses instantiate the engine in :mod:`repro.static.dataflow`,
and a summary layer lifts them across procedure boundaries:

* **Liveness** (backward, register bitmask) — which registers may still
  be read before being overwritten.  The boundary fact at procedure
  exits is *all registers live*: callers' values escape through returns
  and the ISA has no declared clobber sets, so anything weaker would be
  unsound.  Dead-store detection therefore only catches write-after-
  write within a procedure, which is exactly the class the generator
  could emit by accident.
* **Reaching definitions** (forward, ``reg -> set of defining pcs``)
  with a synthetic :data:`ENTRY_DEF` definition for values live-in at
  the procedure entry.  Call sites are *may*-definitions of everything
  the callee's summary clobbers.
* **Value ranges / constant propagation** (forward, ``reg ->``
  :class:`Interval`) with widening at loop heads.  Subsumes the ad-hoc
  backward constant walk used for jump-table resolution: the interval
  of a table load's address register directly bounds the table slice
  (:func:`resolve_table_via_dataflow`).
* **Stack-pointer delta** (forward, ``int`` offset or ``TOP``) —
  SP-relative frame tracking for stack-discipline rules and for
  locating callee-save slots.

:class:`ProcedureSummaries` computes, bottom-up over the call graph
with a fixpoint for recursion, each procedure's may-clobbered and
may-used register sets, its proven callee-saved registers, and whether
its frame is balanced (SP restored on every return).  The summaries
feed back into the intraprocedural transfer functions at call sites —
the interprocedural strategy described in DESIGN.md §13.

:class:`StaticFacts` is the shared lazy cache the verifier and the
trace predictor draw from, so one image is analysed once no matter how
many rules consume the facts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, Optional

from repro.isa import INSTRUCTION_BYTES, Instruction, Kind, Opcode
from repro.isa.registers import NUM_REGISTERS, RA, SP, ZERO
from repro.program.image import ProgramImage
from repro.static.callgraph import StaticCallGraph
from repro.static.dataflow import (
    DataflowAnalysis,
    DataflowResult,
    Direction,
    FlowGraph,
    build_flow_graph,
    solve,
)
from repro.static.dominators import DominatorTree, NaturalLoop, find_loops
from repro.static.recovery import ProcedureRange, RecoveredCFG

#: Synthetic defining pc for values live-in at a procedure entry.
ENTRY_DEF = -1

#: Bitmask of every architectural register except the hardwired zero.
ALL_REGS_MASK = ((1 << NUM_REGISTERS) - 1) & ~(1 << ZERO)

#: Signed 32-bit bounds; interval arithmetic that may leave this range
#: degrades to TOP because engine registers wrap modulo 2**32.
_INT_MIN = -(1 << 31)
_INT_MAX = (1 << 31) - 1

#: Largest jump-table slice :func:`resolve_table_via_dataflow` will
#: enumerate; wider address intervals are treated as unresolved.
_TABLE_CAP = 256


def mask_of(regs: Iterator[int]) -> int:
    """Bitmask with the given register numbers set."""
    mask = 0
    for reg in regs:
        mask |= 1 << reg
    return mask


def mask_iter(mask: int) -> Iterator[int]:
    """Register numbers present in ``mask``, ascending."""
    reg = 0
    while mask:
        if mask & 1:
            yield reg
        mask >>= 1
        reg += 1


# ---------------------------------------------------------------------------
# Value-range lattice
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Interval:
    """Inclusive signed value range ``[lo, hi]``; a constant when equal."""

    lo: int
    hi: int

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def within(self, other: "Interval") -> bool:
        return other.lo <= self.lo and self.hi <= other.hi


def _interval(lo: int, hi: int) -> Optional[Interval]:
    """Interval constructor that degrades out-of-range bounds to TOP."""
    if lo < _INT_MIN or hi > _INT_MAX or lo > hi:
        return None
    return Interval(lo, hi)


def _hull(a: Interval, b: Interval) -> Interval:
    return Interval(min(a.lo, b.lo), max(a.hi, b.hi))


class _Bottom:
    """Unreachable-fact sentinel for lattices with a non-trivial top."""

    _instance: Optional["_Bottom"] = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "⊥"


BOTTOM = _Bottom()


class _Top:
    """Unknown-value sentinel for the scalar SP-delta lattice."""

    _instance: Optional["_Top"] = None

    def __new__(cls) -> "_Top":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "⊤"


TOP = _Top()


# ---------------------------------------------------------------------------
# Call-site effect lookup shared by every interprocedural transfer
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CallEffects:
    """Joined may-effects of one call site over all its possible callees.

    ``clobbered``/``used`` are register bitmasks; an unresolvable site
    (no known targets) degrades to the conservative all-registers /
    unbalanced effect.
    """

    clobbered: int
    used: int
    sp_balanced: bool


_UNKNOWN_CALL = CallEffects(clobbered=ALL_REGS_MASK, used=ALL_REGS_MASK,
                            sp_balanced=False)


# ---------------------------------------------------------------------------
# Liveness (backward, bitmask)
# ---------------------------------------------------------------------------
class LivenessAnalysis(DataflowAnalysis[int]):
    """May-live registers; the fact is a bitmask, bit *r* = ``r`` live.

    ``exit_boundary`` is the fact at procedure exits.  The sound
    default is *all registers live* (values escape through returns);
    passing ``0`` restricts liveness to intra-procedural uses, which is
    what def-use lint rules want — whether a *caller* consumes a
    leftover value is the caller's read-before-write problem, not a
    liveness fact of this procedure.
    """

    direction = Direction.BACKWARD

    def __init__(self, image: ProgramImage,
                 call_effects: dict[int, CallEffects],
                 exit_boundary: int = ALL_REGS_MASK) -> None:
        super().__init__(image)
        self._calls = call_effects
        self._exit_boundary = exit_boundary

    def boundary(self, graph: FlowGraph) -> int:
        return self._exit_boundary

    def initial(self, graph: FlowGraph) -> int:
        return 0

    def join(self, a: int, b: int) -> int:
        return a | b

    def transfer_instruction(self, pc: int, inst: Instruction,
                             fact: int) -> int:
        dest = inst.destination_register()
        if dest is None and inst.is_call:
            dest = RA       # the engine's JALR links to RA when rd=0
        if dest is not None:
            fact &= ~(1 << dest)
        if inst.is_call:
            effects = self._calls.get(pc, _UNKNOWN_CALL)
            # The callee's read of RA is satisfied by this call's own
            # link write, so it is not a use of the caller's RA.
            fact |= effects.used & ~(1 << RA)
            # Callee may-clobbers are not kills: "may" cannot remove
            # liveness soundly.
        for reg in inst.source_registers():
            fact |= 1 << reg
        return fact


# ---------------------------------------------------------------------------
# Reaching definitions (forward, reg -> defining pcs)
# ---------------------------------------------------------------------------
ReachingFact = dict[int, frozenset[int]]


class ReachingDefsAnalysis(DataflowAnalysis[ReachingFact]):
    """Definition sites reaching each point, per register.

    A call site is a *may*-definition of every register its callees'
    summaries clobber (weak update: the incoming definitions survive),
    and a *must*-definition of the link register.
    """

    direction = Direction.FORWARD

    def __init__(self, image: ProgramImage,
                 call_effects: dict[int, CallEffects]) -> None:
        super().__init__(image)
        self._calls = call_effects

    def boundary(self, graph: FlowGraph) -> ReachingFact:
        entry = frozenset({ENTRY_DEF})
        return {reg: entry for reg in range(1, NUM_REGISTERS)}

    def initial(self, graph: FlowGraph) -> ReachingFact:
        return {}

    def join(self, a: ReachingFact, b: ReachingFact) -> ReachingFact:
        if not a:
            return b
        if not b:
            return a
        out = dict(a)
        for reg, defs in b.items():
            have = out.get(reg)
            out[reg] = defs if have is None else have | defs
        return out

    def transfer_instruction(self, pc: int, inst: Instruction,
                             fact: ReachingFact) -> ReachingFact:
        if inst.is_call:
            effects = self._calls.get(pc, _UNKNOWN_CALL)
            out = dict(fact)
            site = frozenset({pc})
            for reg in mask_iter(effects.clobbered & ~(1 << RA)):
                have = out.get(reg)
                out[reg] = site if have is None else have | site
            out[inst.destination_register() or RA] = site
            return out
        dest = inst.destination_register()
        if dest is None:
            return fact
        out = dict(fact)
        out[dest] = frozenset({pc})
        return out


# ---------------------------------------------------------------------------
# Value ranges / constant propagation (forward, reg -> Interval)
# ---------------------------------------------------------------------------
#: A constants fact: register -> interval, absent key = unknown (TOP).
#: The distinguished BOTTOM sentinel marks not-yet-reached blocks.
ConstFact = "dict[int, Interval] | _Bottom"


class ConstantRangeAnalysis(DataflowAnalysis[object]):
    """Interval abstract interpretation of the integer register file."""

    direction = Direction.FORWARD

    def __init__(self, image: ProgramImage,
                 call_effects: dict[int, CallEffects]) -> None:
        super().__init__(image)
        self._calls = call_effects

    def boundary(self, graph: FlowGraph) -> object:
        return {ZERO: Interval(0, 0)}

    def initial(self, graph: FlowGraph) -> object:
        return BOTTOM

    def join(self, a: object, b: object) -> object:
        if a is BOTTOM:
            return b
        if b is BOTTOM:
            return a
        assert isinstance(a, dict) and isinstance(b, dict)
        out: dict[int, Interval] = {}
        for reg, iv in a.items():
            other = b.get(reg)
            if other is not None:
                out[reg] = _hull(iv, other)
        return out

    def widen(self, old: object, new: object) -> object:
        """Drop any still-growing interval to TOP (absent key)."""
        if old is BOTTOM or new is BOTTOM:
            return new
        assert isinstance(old, dict) and isinstance(new, dict)
        out: dict[int, Interval] = {}
        for reg, iv in new.items():
            prev = old.get(reg)
            if prev is not None and iv.within(prev):
                out[reg] = iv
        return out

    def transfer_instruction(self, pc: int, inst: Instruction,
                             fact: object) -> object:
        if fact is BOTTOM:
            return fact
        assert isinstance(fact, dict)
        if inst.is_call:
            effects = self._calls.get(pc, _UNKNOWN_CALL)
            out = {reg: iv for reg, iv in fact.items()
                   if not (effects.clobbered >> reg) & 1}
            out[inst.destination_register() or RA] = Interval(
                pc + INSTRUCTION_BYTES, pc + INSTRUCTION_BYTES)
            return out
        dest = inst.destination_register()
        if dest is None:
            return fact
        value = self._evaluate(pc, inst, fact)
        out = dict(fact)
        if value is None:
            out.pop(dest, None)
        else:
            out[dest] = value
        return out

    # -- per-opcode abstract evaluation --------------------------------
    def _evaluate(self, pc: int, inst: Instruction,
                  fact: dict[int, Interval]) -> Optional[Interval]:
        op = inst.op

        def src1() -> Optional[Interval]:
            return (Interval(0, 0) if inst.rs1 == ZERO
                    else fact.get(inst.rs1))

        def src2() -> Optional[Interval]:
            return (Interval(0, 0) if inst.rs2 == ZERO
                    else fact.get(inst.rs2))

        if op is Opcode.LUI:
            value = (inst.imm & 0xFFFF) << 16
            return _interval(value, value)
        if op is Opcode.ADDI:
            a = src1()
            return None if a is None else _interval(a.lo + inst.imm,
                                                    a.hi + inst.imm)
        if op is Opcode.ADD:
            a, b = src1(), src2()
            if a is None or b is None:
                return None
            return _interval(a.lo + b.lo, a.hi + b.hi)
        if op is Opcode.SUB:
            a, b = src1(), src2()
            if a is None or b is None:
                return None
            return _interval(a.lo - b.hi, a.hi - b.lo)
        if op is Opcode.ANDI:
            if inst.imm < 0:
                return None
            a = src1()
            if a is not None and a.lo >= 0:
                return Interval(0, min(a.hi, inst.imm))
            return Interval(0, inst.imm)
        if op is Opcode.AND:
            a, b = src1(), src2()
            if a is None or b is None:
                return None
            if a.is_const and b.is_const:
                return Interval(a.lo & b.lo, a.lo & b.lo)
            if a.lo >= 0 and b.lo >= 0:
                return Interval(0, min(a.hi, b.hi))
            return None
        if op is Opcode.ORI:
            a = src1()
            if a is None:
                return None
            if a.is_const and inst.imm >= 0:
                value = a.lo | inst.imm
                return _interval(value, value)
            if a.lo >= 0 and inst.imm >= 0:
                return _interval(max(a.lo, inst.imm), a.hi + inst.imm)
            return None
        if op is Opcode.OR:
            a, b = src1(), src2()
            if a is None or b is None:
                return None
            if a.is_const and b.is_const:
                return _interval(a.lo | b.lo, a.lo | b.lo)
            if a.lo >= 0 and b.lo >= 0:
                return _interval(max(a.lo, b.lo), a.hi + b.hi)
            return None
        if op is Opcode.XORI:
            a = src1()
            if a is None:
                return None
            if a.is_const:
                return _interval(a.lo ^ inst.imm, a.lo ^ inst.imm)
            if a.lo >= 0 and inst.imm >= 0:
                return _interval(0, a.hi + inst.imm)
            return None
        if op is Opcode.XOR:
            a, b = src1(), src2()
            if a is not None and b is not None and a.is_const and b.is_const:
                return _interval(a.lo ^ b.lo, a.lo ^ b.lo)
            return None
        if op in (Opcode.SLT, Opcode.SLTI):
            return Interval(0, 1)
        if op in (Opcode.SLLI, Opcode.SLL, Opcode.SRLI, Opcode.SRL):
            a = src1()
            if op in (Opcode.SLLI, Opcode.SRLI):
                shift: Optional[int] = inst.imm
            else:
                b = src2()
                shift = b.lo if b is not None and b.is_const else None
            if a is None or shift is None or not 0 <= shift < 32:
                return None
            if op in (Opcode.SLLI, Opcode.SLL):
                return _interval(a.lo << shift, a.hi << shift)
            if a.lo < 0:
                return None     # logical right shift of negatives
            return Interval(a.lo >> shift, a.hi >> shift)
        if op is Opcode.MUL:
            a, b = src1(), src2()
            if a is None or b is None:
                return None
            if a.is_const and b.is_const:
                return _interval(a.lo * b.lo, a.lo * b.lo)
            if a.lo >= 0 and b.lo >= 0:
                return _interval(a.lo * b.lo, a.hi * b.hi)
            return None
        if op is Opcode.SADD:
            a, b = src1(), src2()
            if a is None or b is None:
                return None
            return _interval((a.lo << inst.sh1) + (b.lo << inst.sh2)
                             + inst.imm,
                             (a.hi << inst.sh1) + (b.hi << inst.sh2)
                             + inst.imm)
        # Loads, divides, and anything else: unknown.
        return None


# ---------------------------------------------------------------------------
# Stack-pointer delta (forward, int offset from the entry SP)
# ---------------------------------------------------------------------------
class SPDeltaAnalysis(DataflowAnalysis[object]):
    """SP offset relative to procedure entry: ``int``, TOP, or BOTTOM.

    Only the idiomatic ``ADDI sp, sp, imm`` adjustments track; any
    other write to SP degrades to TOP.  Calls preserve the delta when
    every possible callee is proven frame-balanced.
    """

    direction = Direction.FORWARD

    def __init__(self, image: ProgramImage,
                 call_effects: dict[int, CallEffects]) -> None:
        super().__init__(image)
        self._calls = call_effects

    def boundary(self, graph: FlowGraph) -> object:
        return 0

    def initial(self, graph: FlowGraph) -> object:
        return BOTTOM

    def join(self, a: object, b: object) -> object:
        if a is BOTTOM:
            return b
        if b is BOTTOM:
            return a
        return a if a == b else TOP

    def transfer_instruction(self, pc: int, inst: Instruction,
                             fact: object) -> object:
        if fact is BOTTOM:
            return fact
        if inst.is_call:
            effects = self._calls.get(pc, _UNKNOWN_CALL)
            return fact if effects.sp_balanced else TOP
        if (inst.op is Opcode.ADDI and inst.rd == SP
                and inst.rs1 == SP):
            return TOP if fact is TOP else int(fact) + inst.imm  # type: ignore[call-overload]
        if inst.destination_register() == SP:
            return TOP
        return fact


# ---------------------------------------------------------------------------
# Procedure summaries (interprocedural layer)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ProcedureSummary:
    """One procedure's externally visible register/stack effects.

    ``clobbered``/``used`` are may-effect bitmasks *as seen by a
    caller*: callee-saved registers the procedure provably restores are
    excluded from ``clobbered``, and ``used`` holds only *upward-
    exposed* reads — caller values that may be consumed before any
    definition, by the procedure or transitively by its callees.
    ``preserved`` is the proven save/restore set; ``sp_balanced`` says
    every return leaves SP exactly where the caller had it.
    """

    name: str
    clobbered: int
    used: int
    preserved: int
    sp_balanced: bool


class ProcedureSummaries:
    """Bottom-up interprocedural summaries over the call graph.

    Recursion is handled by a fixpoint: effects only grow (and
    ``sp_balanced`` only falls), both lattices are finite, so the
    iteration terminates.
    """

    def __init__(self, cfg: RecoveredCFG,
                 callgraph: StaticCallGraph) -> None:
        self.cfg = cfg
        self.callgraph = callgraph
        image = cfg.image
        #: call-site pc -> callee names (possibly empty when unknown).
        self.site_targets: dict[int, tuple[str, ...]] = {
            site.pc: site.targets for site in callgraph.sites}

        procs = cfg.procedures
        local_writes: dict[str, int] = {}
        call_pcs: dict[str, list[int]] = {}
        self._graphs: dict[str, FlowGraph] = {}
        for proc in procs:
            graph = build_flow_graph(cfg, proc)
            self._graphs[proc.name] = graph
            writes = 0
            sites: list[int] = []
            for start in graph.nodes:
                for pc in cfg.blocks[start].addresses():
                    inst = image.try_fetch(pc)
                    if inst is None:
                        continue
                    dest = inst.destination_register()
                    if dest is not None:
                        writes |= 1 << dest
                    if inst.is_call:
                        sites.append(pc)
            local_writes[proc.name] = writes
            call_pcs[proc.name] = sites

        # -- frame balance fixpoint (balanced can only fall) -----------
        balanced = {proc.name: True for proc in procs}
        self.sp_results: dict[str, DataflowResult[object]] = {}
        for _ in range(len(procs) + 1):
            effects = self._effects_map(balanced, {}, {})
            changed = False
            for proc in procs:
                analysis = SPDeltaAnalysis(image, effects)
                result = solve(analysis, cfg,
                               graph=self._graphs[proc.name])
                self.sp_results[proc.name] = result
                ok = self._returns_balanced(proc, result)
                if ok != balanced[proc.name]:
                    balanced[proc.name] = ok
                    changed = True
            if not changed:
                break

        # -- callee-saved detection (needs the final SP facts) ---------
        preserved = {proc.name: self._preserved_mask(
            proc, self.sp_results[proc.name]) for proc in procs}

        # -- may-clobber / upward-exposed-use fixpoint -----------------
        # ``used`` is the *caller-visible* read set: registers whose
        # value at the call site may be consumed before any definition,
        # by the procedure itself or transitively by a callee.  That is
        # exactly the live-in fact of an exits-dead liveness solve —
        # which itself consumes the current effects estimate at call
        # sites, so it sits inside the same growing fixpoint as
        # ``clobbered`` (both masks only gain bits; terminates).
        clobbered = {p.name: local_writes[p.name] for p in procs}
        used = {p.name: 0 for p in procs}
        for _ in range(len(procs) + 1):
            effects = self._effects_map(balanced, clobbered, used)
            changed = False
            for proc in procs:
                clob = local_writes[proc.name]
                for pc in call_pcs[proc.name]:
                    targets = self.site_targets.get(pc, ())
                    if not targets:
                        clob |= ALL_REGS_MASK
                        continue
                    for callee in targets:
                        clob |= clobbered.get(callee, ALL_REGS_MASK)
                clob &= ~preserved[proc.name] & ~(1 << ZERO)
                graph = self._graphs[proc.name]
                use = 0
                if graph.nodes:
                    analysis = LivenessAnalysis(image, effects,
                                                exit_boundary=0)
                    live = solve(analysis, cfg, graph=graph)
                    use = live.in_facts.get(proc.start, 0)
                if clob != clobbered[proc.name] or use != used[proc.name]:
                    clobbered[proc.name] = clob
                    used[proc.name] = use
                    changed = True
            if not changed:
                break

        self.summaries: dict[str, ProcedureSummary] = {
            proc.name: ProcedureSummary(
                name=proc.name,
                clobbered=clobbered[proc.name],
                used=used[proc.name],
                preserved=preserved[proc.name],
                sp_balanced=balanced[proc.name],
            ) for proc in procs}
        self.call_effects: dict[int, CallEffects] = self._effects_map(
            balanced, clobbered, used)

    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> ProcedureSummary:
        return self.summaries[name]

    def __contains__(self, name: str) -> bool:
        return name in self.summaries

    def _effects_map(self, balanced: dict[str, bool],
                     clobbered: dict[str, int],
                     used: dict[str, int]) -> dict[int, CallEffects]:
        effects: dict[int, CallEffects] = {}
        for pc, targets in self.site_targets.items():
            if not targets:
                effects[pc] = _UNKNOWN_CALL
                continue
            clob = use = 0
            ok = True
            for callee in targets:
                clob |= clobbered.get(callee, ALL_REGS_MASK)
                use |= used.get(callee, ALL_REGS_MASK)
                ok = ok and balanced.get(callee, False)
            effects[pc] = CallEffects(clobbered=clob, used=use,
                                      sp_balanced=ok)
        return effects

    def _returns_balanced(self, proc: ProcedureRange,
                          result: DataflowResult[object]) -> bool:
        """Every reachable return leaves SP at delta zero."""
        for start in result.graph.nodes:
            block = self.cfg.blocks[start]
            if block.terminator != "return":
                continue
            delta = result.out_facts[start]
            if delta is BOTTOM:
                continue            # return never reached in-graph
            if delta != 0:
                return False
        return True

    def _preserved_mask(self, proc: ProcedureRange,
                        sp: DataflowResult[object]) -> int:
        """Callee-saved registers proven saved/restored by ``proc``.

        The prologue pattern ``SW r, k(sp)`` (before any other
        definition of ``r``) establishes a candidate slot at the
        entry-relative offset ``delta + k``; every reachable return
        block must reload ``r`` from the same slot, and no other
        SP-based store may alias it.  Only SP-based stores are
        considered frame writes — the stack-discipline rules (SD002)
        independently flag any other store that could reach the stack
        segment, so treating them as non-aliasing here is safe.
        """
        cfg = self.cfg
        graph = sp.graph
        if proc.start not in cfg.blocks or not graph.nodes:
            return 0
        image = cfg.image
        entry_rows = sp.instruction_facts(cfg, proc.start)

        candidates: dict[int, int] = {}      # reg -> entry-relative slot
        defined = 0
        for pc, inst, fact in entry_rows:
            if (inst.op is Opcode.SW and inst.rs1 == SP
                    and isinstance(fact, int)
                    and inst.rs2 != ZERO
                    and not (defined >> inst.rs2) & 1
                    and inst.rs2 not in candidates):
                candidates[inst.rs2] = fact + inst.imm
            dest = inst.destination_register()
            if dest is not None:
                defined |= 1 << dest
            if inst.is_call:
                break               # callee may observe anything
        if not candidates:
            return 0

        slots = set(candidates.values())
        entry_saves = {pc for pc, inst, fact in entry_rows
                       if inst.op is Opcode.SW and inst.rs1 == SP
                       and isinstance(fact, int)
                       and fact + inst.imm in slots}

        returns = [start for start in graph.nodes
                   if cfg.blocks[start].terminator == "return"
                   and sp.in_facts[start] is not BOTTOM]
        if not returns:
            return 0

        preserved = dict(candidates)
        for start in graph.nodes:
            rows = sp.instruction_facts(cfg, start)
            restored: dict[int, bool] = {}
            for pc, inst, fact in rows:
                if (inst.op is Opcode.SW and inst.rs1 == SP
                        and pc not in entry_saves):
                    # A second store into a save slot (or an unknown-
                    # delta SP store) voids any candidate it may alias.
                    if isinstance(fact, int):
                        hit = fact + inst.imm
                        for reg, slot in list(preserved.items()):
                            if slot == hit:
                                del preserved[reg]
                    else:
                        preserved.clear()
                if (inst.op is Opcode.LW and inst.rs1 == SP
                        and isinstance(fact, int)):
                    for reg, slot in preserved.items():
                        if (inst.rd == reg
                                and fact + inst.imm == slot):
                            restored[reg] = True
                elif inst.destination_register() in preserved:
                    restored[inst.destination_register()] = False  # type: ignore[index]
            if start in returns:
                for reg in list(preserved):
                    if not restored.get(reg, False):
                        del preserved[reg]
            if not preserved:
                return 0
        return mask_of(iter(preserved))


# ---------------------------------------------------------------------------
# Loop trip-count bounding
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TripBound:
    """Static iteration-count bounds for one natural loop."""

    header: int
    lo: int
    hi: int

    @property
    def is_degenerate(self) -> bool:
        """At most one iteration: the back edge can never be taken."""
        return self.hi <= 1


def bound_trip_counts(facts: "StaticFacts",
                      proc: ProcedureRange) -> dict[int, TripBound]:
    """Trip bounds for counted loops of ``proc``, keyed by header block.

    Recognises the canonical counted-loop shape: a single back-edge
    conditional ``BLT counter, limit``, a unique in-loop definition of
    the counter that is ``ADDI counter, counter, step`` with positive
    step, a loop-invariant limit with a known value range, and a known
    counter value on loop entry.  Anything else is left unbounded
    (absent from the result) — soundly, since consumers only use
    *present* bounds.
    """
    cfg = facts.cfg
    image = cfg.image
    graph = facts.flow_graph(proc)
    const = facts.constants(proc)
    bounds: dict[int, TripBound] = {}

    for loop in facts.loops(proc):
        if len(loop.back_edges) != 1:
            continue
        source, header = loop.back_edges[0]
        block = cfg.blocks[source]
        if block.terminator != "branch":
            continue
        branch_pc = block.end - INSTRUCTION_BYTES
        branch = image.try_fetch(branch_pc)
        if (branch is None or branch.op is not Opcode.BLT
                or branch_pc + branch.imm != header):
            continue
        counter, limit = branch.rs1, branch.rs2

        step: Optional[int] = None
        well_formed = True
        for body_start in sorted(loop.body):
            for pc in cfg.blocks[body_start].addresses():
                inst = image.try_fetch(pc)
                if inst is None:
                    continue
                dest = inst.destination_register()
                if dest == limit:
                    well_formed = False     # limit not loop-invariant
                elif dest == counter:
                    if (inst.op is Opcode.ADDI and inst.rs1 == counter
                            and inst.imm > 0 and step is None):
                        step = inst.imm
                    else:
                        well_formed = False
                if inst.is_call:
                    effects = facts.summaries.call_effects.get(
                        pc, _UNKNOWN_CALL)
                    if (effects.clobbered >> counter) & 1 \
                            or (effects.clobbered >> limit) & 1:
                        well_formed = False
        if not well_formed or step is None:
            continue

        # Counter value on loop entry: join of the non-back-edge
        # predecessors of the header.
        init: Optional[Interval] = None
        seen_preheader = False
        for pred in graph.preds.get(header, ()):
            if pred in loop.body:
                continue
            seen_preheader = True
            fact = const.out_facts.get(pred)
            if not isinstance(fact, dict):
                init = None
                break
            iv = fact.get(counter)
            if iv is None:
                init = None
                break
            init = iv if init is None else _hull(init, iv)
        if not seen_preheader or init is None:
            continue

        # Limit range at the branch itself.
        limit_iv: Optional[Interval] = None
        for pc, _inst, fact in const.instruction_facts(cfg, source):
            if pc == branch_pc and isinstance(fact, dict):
                limit_iv = fact.get(limit)
        if limit_iv is None:
            continue

        # Do-while rotation: the body always runs once, then repeats
        # while counter < limit.
        lo = max(1, math.ceil((limit_iv.lo - init.hi) / step))
        hi = max(1, math.ceil((limit_iv.hi - init.lo) / step))
        bounds[header] = TripBound(header=header, lo=lo, hi=hi)
    return bounds


# ---------------------------------------------------------------------------
# Dataflow-driven jump-table resolution
# ---------------------------------------------------------------------------
def table_load_slice(facts: "StaticFacts", proc: ProcedureRange,
                     pc: int) -> Optional[tuple[int, int]]:
    """Byte-address bounds ``[lo, hi]`` of the table load feeding the
    indirect transfer at ``pc``, when the interval analysis bounds it.

    The slice is the address range the feeding ``LW`` may read — the
    masked index was propagated through its shift and the add onto the
    constant table base, so the load-address interval *is* the set of
    table words the transfer can select.  ``None`` when the feeding
    load cannot be identified or its address is unbounded (degenerate
    strides and slices wider than :data:`_TABLE_CAP` words included).
    """
    cfg = facts.cfg
    image = cfg.image
    inst = image.try_fetch(pc)
    if inst is None or not inst.is_indirect:
        return None
    block = cfg.block_at(pc)
    if block is None or block.start not in facts.flow_graph(proc).succs:
        return None
    target = inst.rs1

    rows = facts.constants(proc).instruction_facts(cfg, block.start)
    load: Optional[tuple[int, Instruction, dict[int, Interval]]] = None
    for row_pc, row_inst, row_fact in rows:
        if row_pc >= pc:
            break
        if row_inst.destination_register() == target:
            if row_inst.op is Opcode.LW and isinstance(row_fact, dict):
                load = (row_pc, row_inst, row_fact)
            else:
                load = None
    if load is None:
        return None
    _load_pc, load_inst, load_fact = load
    base = (Interval(0, 0) if load_inst.rs1 == ZERO
            else load_fact.get(load_inst.rs1))
    if base is None:
        return None
    lo = base.lo + load_inst.imm
    hi = base.hi + load_inst.imm
    if (hi - lo) % INSTRUCTION_BYTES or \
            (hi - lo) // INSTRUCTION_BYTES + 1 > _TABLE_CAP:
        return None
    return lo, hi


def resolve_table_via_dataflow(facts: "StaticFacts", proc: ProcedureRange,
                               pc: int) -> Optional[tuple[int, ...]]:
    """Resolve the table feeding the indirect transfer at ``pc``.

    Where :func:`repro.static.recovery.resolve_indirect_table` pattern-
    matches the producing instruction window, this walks the *value
    range* of the table-load address (:func:`table_load_slice`).  Every
    word in the slice must be a relocated code address; otherwise the
    site stays unresolved (``None``).
    """
    span = table_load_slice(facts, proc, pc)
    if span is None:
        return None
    lo, hi = span
    cfg = facts.cfg
    targets: list[int] = []
    for addr in range(lo, hi + 1, INSTRUCTION_BYTES):
        entry = cfg.reloc_targets.get(addr)
        if entry is None:
            return None
        targets.append(entry)
    return tuple(targets)


# ---------------------------------------------------------------------------
# Shared lazy fact cache
# ---------------------------------------------------------------------------
class StaticFacts:
    """Lazily computed, memoised analysis results for one image.

    The verifier's dataflow rules and the trace predictor both pull
    from one instance, so each (analysis, procedure) pair is solved at
    most once per image.
    """

    def __init__(self, image: ProgramImage,
                 cfg: Optional[RecoveredCFG] = None,
                 callgraph: Optional[StaticCallGraph] = None) -> None:
        self.image = image
        self._cfg = cfg
        self._callgraph = callgraph
        self._graphs: dict[int, FlowGraph] = {}
        self._dominators: dict[int, DominatorTree] = {}
        self._loops: dict[int, list[NaturalLoop]] = {}
        self._liveness: dict[int, DataflowResult[int]] = {}
        self._liveness_local: dict[int, DataflowResult[int]] = {}
        self._reaching: dict[int, DataflowResult[ReachingFact]] = {}
        self._constants: dict[int, DataflowResult[object]] = {}
        self._trip_bounds: dict[int, dict[int, TripBound]] = {}

    @cached_property
    def cfg(self) -> RecoveredCFG:
        return self._cfg if self._cfg is not None \
            else RecoveredCFG(self.image)

    @cached_property
    def callgraph(self) -> StaticCallGraph:
        return self._callgraph if self._callgraph is not None \
            else StaticCallGraph(self.cfg)

    @cached_property
    def summaries(self) -> ProcedureSummaries:
        return ProcedureSummaries(self.cfg, self.callgraph)

    # ------------------------------------------------------------------
    def flow_graph(self, proc: ProcedureRange) -> FlowGraph:
        graph = self._graphs.get(proc.start)
        if graph is None:
            graph = self.summaries._graphs.get(proc.name) \
                or build_flow_graph(self.cfg, proc)
            self._graphs[proc.start] = graph
        return graph

    def dominators(self, proc: ProcedureRange) -> DominatorTree:
        tree = self._dominators.get(proc.start)
        if tree is None:
            tree = DominatorTree(self.cfg, proc,
                                 graph=self.flow_graph(proc))
            self._dominators[proc.start] = tree
        return tree

    def loops(self, proc: ProcedureRange) -> list[NaturalLoop]:
        loops = self._loops.get(proc.start)
        if loops is None:
            loops = find_loops(self.dominators(proc))
            self._loops[proc.start] = loops
        return loops

    def liveness(self, proc: ProcedureRange) -> DataflowResult[int]:
        result = self._liveness.get(proc.start)
        if result is None:
            analysis = LivenessAnalysis(self.image,
                                        self.summaries.call_effects)
            result = solve(analysis, self.cfg,
                           graph=self.flow_graph(proc))
            self._liveness[proc.start] = result
        return result

    def liveness_local(self, proc: ProcedureRange) -> DataflowResult[int]:
        """Liveness restricted to intra-procedural uses (exits dead)."""
        result = self._liveness_local.get(proc.start)
        if result is None:
            analysis = LivenessAnalysis(self.image,
                                        self.summaries.call_effects,
                                        exit_boundary=0)
            result = solve(analysis, self.cfg,
                           graph=self.flow_graph(proc))
            self._liveness_local[proc.start] = result
        return result

    def reaching(self, proc: ProcedureRange
                 ) -> DataflowResult[ReachingFact]:
        result = self._reaching.get(proc.start)
        if result is None:
            analysis = ReachingDefsAnalysis(self.image,
                                            self.summaries.call_effects)
            result = solve(analysis, self.cfg,
                           graph=self.flow_graph(proc))
            self._reaching[proc.start] = result
        return result

    def constants(self, proc: ProcedureRange) -> DataflowResult[object]:
        result = self._constants.get(proc.start)
        if result is None:
            analysis = ConstantRangeAnalysis(
                self.image, self.summaries.call_effects)
            result = solve(analysis, self.cfg,
                           graph=self.flow_graph(proc))
            self._constants[proc.start] = result
        return result

    def sp_delta(self, proc: ProcedureRange) -> DataflowResult[object]:
        return self.summaries.sp_results[proc.name]

    def trip_bounds(self, proc: ProcedureRange) -> dict[int, TripBound]:
        bounds = self._trip_bounds.get(proc.start)
        if bounds is None:
            bounds = bound_trip_counts(self, proc)
            self._trip_bounds[proc.start] = bounds
        return bounds

    # ------------------------------------------------------------------
    def live_procedures(self) -> list[ProcedureRange]:
        """Procedures reachable from the entry, in address order."""
        live = self.callgraph.live
        return [proc for proc in self.cfg.procedures
                if proc.name in live]
