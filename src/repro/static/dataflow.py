"""Generic lattice/worklist dataflow engine over the recovered CFG.

The static layer needs several classic analyses (liveness, reaching
definitions, value ranges, stack-pointer deltas) and they all share one
skeleton: facts drawn from a join-semilattice, per-block transfer
functions, and iteration to a fixpoint in a deterministic order.  This
module provides that skeleton once:

* :class:`FlowGraph` — a frozen, fully deterministic per-procedure
  block graph (sorted nodes, ordered successor/predecessor tuples and
  a reverse-postorder numbering with no dependence on ``dict``/``set``
  insertion order or ``PYTHONHASHSEED``);
* :class:`DataflowAnalysis` — the abstract problem definition: a
  direction, a boundary fact, an optimistic initial fact, ``join``,
  and a per-instruction (or per-block) transfer function, with an
  optional widening hook for infinite-height lattices;
* :func:`solve` — round-robin iteration over reverse postorder
  (postorder for backward problems) until the facts stop changing.

Facts are arbitrary Python values compared with ``==``; analyses in
:mod:`repro.static.analyses` use ``int`` bitmasks and small ``dict``\\ s.
The engine is intraprocedural; interprocedural effects enter through
the transfer functions via callgraph-driven procedure summaries
(:class:`repro.static.analyses.ProcedureSummaries`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Generic, Iterator, Optional, TypeVar

from repro.isa import INSTRUCTION_BYTES, Instruction
from repro.program.image import ProgramImage
from repro.static.recovery import BlockInfo, ProcedureRange, RecoveredCFG

F = TypeVar("F")

#: Fixpoint-round bound: after this many full sweeps the engine applies
#: :meth:`DataflowAnalysis.widen` each round, and after twice as many it
#: declares divergence (``DataflowResult.converged`` False) instead of
#: spinning.  Every lattice in this repository converges in a handful
#: of rounds; the bound is a safety net for adversarial inputs.
WIDEN_AFTER_ROUNDS = 8
MAX_ROUNDS = 64


class Direction(enum.Enum):
    """Which way facts flow through the graph."""

    FORWARD = "forward"
    BACKWARD = "backward"


@dataclass(frozen=True)
class FlowGraph:
    """One procedure's reachable blocks as a deterministic graph.

    ``nodes`` are block start addresses in ascending order, restricted
    to blocks reachable from the procedure entry via intra-procedure
    edges (matching :meth:`RecoveredCFG.reachable_blocks`).  Successor
    targets that leave the procedure are dropped here — the verifier's
    SD001 rule owns those — so a block whose control only escapes the
    procedure appears as an exit.
    """

    proc: ProcedureRange
    entry: int
    nodes: tuple[int, ...]
    succs: dict[int, tuple[int, ...]]
    preds: dict[int, tuple[int, ...]]
    rpo: tuple[int, ...]

    @property
    def exits(self) -> tuple[int, ...]:
        """Blocks with no in-procedure successors, ascending."""
        return tuple(n for n in self.nodes if not self.succs[n])

    def rpo_index(self) -> dict[int, int]:
        return {block: i for i, block in enumerate(self.rpo)}


def build_flow_graph(cfg: RecoveredCFG, proc: ProcedureRange) -> FlowGraph:
    """The deterministic flow graph of ``proc``.

    Iterates the reachable-block *set* in sorted order everywhere, so
    the resulting node order, edge order and reverse postorder are pure
    functions of the image.
    """
    reachable = cfg.reachable_blocks(proc)
    nodes = tuple(sorted(reachable))
    succs: dict[int, tuple[int, ...]] = {}
    for start in nodes:
        targets: list[int] = []
        for addr in cfg.blocks[start].successors:
            target = cfg.block_at(addr)
            if (target is not None and target.start in reachable
                    and target.start not in targets):
                targets.append(target.start)
        succs[start] = tuple(targets)
    preds: dict[int, list[int]] = {start: [] for start in nodes}
    for start in nodes:
        for succ in succs[start]:
            preds[succ].append(start)
    rpo = _reverse_postorder(proc.start, succs) if nodes else ()
    return FlowGraph(proc=proc, entry=proc.start, nodes=nodes,
                     succs=succs,
                     preds={s: tuple(p) for s, p in preds.items()},
                     rpo=tuple(rpo))


def _reverse_postorder(entry: int,
                       succs: dict[int, tuple[int, ...]]) -> list[int]:
    """Iterative DFS postorder from ``entry``, reversed.

    Child visit order follows the successor tuples, which are
    themselves deterministic, so the numbering never depends on hash
    iteration order.
    """
    order: list[int] = []
    seen = {entry}
    stack: list[tuple[int, int]] = [(entry, 0)]
    while stack:
        node, i = stack.pop()
        children = succs.get(node, ())
        if i < len(children):
            stack.append((node, i + 1))
            child = children[i]
            if child not in seen:
                seen.add(child)
                stack.append((child, 0))
        else:
            order.append(node)
    order.reverse()
    return order


class DataflowAnalysis(Generic[F]):
    """One dataflow problem: lattice + direction + transfer functions.

    Subclasses set :attr:`direction` and implement :meth:`boundary`,
    :meth:`initial`, :meth:`join` and either
    :meth:`transfer_instruction` (the common case — the engine folds it
    over the block in the right order) or :meth:`transfer_block`.
    """

    direction: Direction = Direction.FORWARD

    def __init__(self, image: ProgramImage) -> None:
        self.image = image

    # -- lattice -------------------------------------------------------
    def boundary(self, graph: FlowGraph) -> F:
        """Fact at the procedure entry (forward) or its exits (backward)."""
        raise NotImplementedError

    def initial(self, graph: FlowGraph) -> F:
        """Optimistic starting fact for every other block."""
        raise NotImplementedError

    def join(self, a: F, b: F) -> F:
        raise NotImplementedError

    def widen(self, old: F, new: F) -> F:
        """Accelerate convergence on infinite-height lattices.

        Called in place of plain replacement once a fixpoint has not
        been reached after :data:`WIDEN_AFTER_ROUNDS` sweeps.  The
        default keeps the new fact (finite lattices need nothing more).
        """
        return new

    # -- transfer ------------------------------------------------------
    def transfer_block(self, block: BlockInfo, fact: F) -> F:
        """Fold the per-instruction transfer across ``block``."""
        addresses: Iterator[int] = block.addresses()
        if self.direction is Direction.BACKWARD:
            addresses = reversed(range(block.start, block.end,
                                       INSTRUCTION_BYTES))
        for pc in addresses:
            inst = self.image.try_fetch(pc)
            if inst is not None:
                fact = self.transfer_instruction(pc, inst, fact)
        return fact

    def transfer_instruction(self, pc: int, inst: Instruction,
                             fact: F) -> F:
        return fact


@dataclass
class DataflowResult(Generic[F]):
    """Fixpoint facts per block.

    ``in_facts``/``out_facts`` are keyed by block start and always mean
    the fact *at the block's first instruction* / *after its last
    instruction*, regardless of direction.
    """

    analysis: DataflowAnalysis[F]
    graph: FlowGraph
    in_facts: dict[int, F]
    out_facts: dict[int, F]
    rounds: int
    converged: bool

    def instruction_facts(self, cfg: RecoveredCFG, block_start: int
                          ) -> list[tuple[int, Instruction, F]]:
        """Per-instruction facts inside one block.

        For a forward analysis each row carries the fact *before* the
        instruction; for a backward analysis the fact *after* it (the
        side a consumer almost always wants — e.g. liveness after a
        definition decides whether the definition is dead).
        """
        block = cfg.blocks[block_start]
        analysis = self.analysis
        image = analysis.image
        rows: list[tuple[int, Instruction, F]] = []
        if analysis.direction is Direction.FORWARD:
            fact = self.in_facts[block_start]
            for pc in block.addresses():
                inst = image.try_fetch(pc)
                if inst is None:
                    continue
                rows.append((pc, inst, fact))
                fact = analysis.transfer_instruction(pc, inst, fact)
        else:
            fact = self.out_facts[block_start]
            for pc in reversed(range(block.start, block.end,
                                     INSTRUCTION_BYTES)):
                inst = image.try_fetch(pc)
                if inst is None:
                    continue
                # Walking backward, the held fact is the one *after*
                # ``pc`` in program order: record it, then transfer.
                rows.append((pc, inst, fact))
                fact = analysis.transfer_instruction(pc, inst, fact)
            rows.reverse()
        return rows


def solve(analysis: DataflowAnalysis[F], cfg: RecoveredCFG,
          graph: Optional[FlowGraph] = None,
          proc: Optional[ProcedureRange] = None) -> DataflowResult[F]:
    """Iterate ``analysis`` to a fixpoint over one procedure.

    Round-robin over reverse postorder (forward) or postorder
    (backward): deterministic, and within a sweep every block sees its
    already-updated predecessors, so shallow CFGs converge in two or
    three rounds.
    """
    if graph is None:
        if proc is None:
            raise ValueError("solve() needs a FlowGraph or a procedure")
        graph = build_flow_graph(cfg, proc)
    forward = analysis.direction is Direction.FORWARD
    order = graph.rpo if forward else tuple(reversed(graph.rpo))
    boundary = analysis.boundary(graph)
    exits = frozenset(graph.exits)

    in_facts: dict[int, F] = {}
    out_facts: dict[int, F] = {}
    for node in graph.nodes:
        in_facts[node] = analysis.initial(graph)
        out_facts[node] = analysis.initial(graph)

    rounds = 0
    changed = bool(graph.nodes)
    while changed and rounds < MAX_ROUNDS:
        changed = False
        rounds += 1
        widening = rounds > WIDEN_AFTER_ROUNDS
        for node in order:
            if forward:
                fact = boundary if node == graph.entry else None
                for pred in graph.preds[node]:
                    fact = (out_facts[pred] if fact is None
                            else analysis.join(fact, out_facts[pred]))
                if fact is None:       # unreachable in graph terms
                    fact = analysis.initial(graph)
                if widening:
                    fact = analysis.widen(in_facts[node], fact)
                if fact != in_facts[node]:
                    in_facts[node] = fact
                    changed = True
                new_out = analysis.transfer_block(cfg.blocks[node], fact)
                if new_out != out_facts[node]:
                    out_facts[node] = new_out
                    changed = True
            else:
                fact = boundary if node in exits else None
                for succ in graph.succs[node]:
                    fact = (in_facts[succ] if fact is None
                            else analysis.join(fact, in_facts[succ]))
                if fact is None:       # e.g. an infinite loop's blocks
                    fact = analysis.initial(graph)
                if widening:
                    fact = analysis.widen(out_facts[node], fact)
                if fact != out_facts[node]:
                    out_facts[node] = fact
                    changed = True
                new_in = analysis.transfer_block(cfg.blocks[node], fact)
                if new_in != in_facts[node]:
                    in_facts[node] = new_in
                    changed = True

    return DataflowResult(analysis=analysis, graph=graph,
                          in_facts=in_facts, out_facts=out_facts,
                          rounds=rounds, converged=not changed)
