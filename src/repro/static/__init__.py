"""Static binary analysis over linked program images.

Recovers the structure the preconstruction hardware observes
dynamically — procedures, basic blocks, loops, calls — directly from a
:class:`~repro.program.image.ProgramImage`, and builds two consumers on
top of it:

* a **program verifier** (:mod:`repro.static.verifier`): named,
  severity-tagged lint rules guarding the structural invariants the
  simulator relies on, used as a post-generation gate and exposed via
  ``python -m repro analyze``;
* **static region seeding** (:mod:`repro.static.seeding`): the paper's
  region start points (call returns + loop exits, §3.1-§3.2) computed
  ahead of time to prime the preconstruction engine (``--static-seed``);
* a **dataflow framework** (:mod:`repro.static.dataflow` /
  :mod:`repro.static.analyses`): a generic lattice/worklist engine with
  liveness, reaching definitions, constant-range propagation, SP-delta
  tracking, interprocedural call-effect summaries and loop trip-count
  bounds, memoised behind :class:`StaticFacts`;
* a **coverage predictor** (:mod:`repro.static.predictor`): static
  trace delimitation per §3.2 predicting every trace start point and
  committed pc ahead of execution, exposed via
  ``python -m repro predict`` and differentially validated by the
  ``coverage`` oracle in :mod:`repro.check`.
"""

from repro.static.analyses import (
    ALL_REGS_MASK,
    BOTTOM,
    ENTRY_DEF,
    TOP,
    CallEffects,
    ConstantRangeAnalysis,
    Interval,
    LivenessAnalysis,
    ProcedureSummaries,
    ProcedureSummary,
    ReachingDefsAnalysis,
    SPDeltaAnalysis,
    StaticFacts,
    TripBound,
    bound_trip_counts,
    resolve_table_via_dataflow,
    table_load_slice,
)
from repro.static.callgraph import (
    CallSite,
    StaticCallGraph,
    recover_call_graph,
)
from repro.static.dataflow import (
    DataflowAnalysis,
    DataflowResult,
    Direction,
    FlowGraph,
    build_flow_graph,
    solve,
)
from repro.static.dominators import (
    DominatorTree,
    NaturalLoop,
    find_loops,
    irreducible_components,
    loop_depth_map,
)
from repro.static.recovery import (
    BlockInfo,
    ProcedureRange,
    RecoveredCFG,
    recover_cfg,
)
from repro.static.predictor import (
    CoveragePrediction,
    RegionPrediction,
    format_prediction,
    predict_coverage,
)
from repro.static.report import (
    STATIC_SCHEMA_VERSION,
    StaticAnalysisReport,
    analyze_image,
    format_report,
)
from repro.static.seeding import StaticSeed, compute_static_seeds
from repro.static.verifier import (
    DEFAULT_RAS_DEPTH,
    LintFinding,
    Severity,
    VerificationReport,
    verify_image,
)

__all__ = [
    "ALL_REGS_MASK",
    "BOTTOM",
    "BlockInfo",
    "CallEffects",
    "CallSite",
    "ConstantRangeAnalysis",
    "CoveragePrediction",
    "DEFAULT_RAS_DEPTH",
    "DataflowAnalysis",
    "DataflowResult",
    "Direction",
    "DominatorTree",
    "ENTRY_DEF",
    "FlowGraph",
    "Interval",
    "LintFinding",
    "LivenessAnalysis",
    "NaturalLoop",
    "ProcedureRange",
    "ProcedureSummaries",
    "ProcedureSummary",
    "ReachingDefsAnalysis",
    "RecoveredCFG",
    "RegionPrediction",
    "SPDeltaAnalysis",
    "STATIC_SCHEMA_VERSION",
    "Severity",
    "StaticAnalysisReport",
    "StaticCallGraph",
    "StaticFacts",
    "StaticSeed",
    "TOP",
    "TripBound",
    "VerificationReport",
    "analyze_image",
    "bound_trip_counts",
    "build_flow_graph",
    "compute_static_seeds",
    "find_loops",
    "format_prediction",
    "format_report",
    "irreducible_components",
    "loop_depth_map",
    "predict_coverage",
    "recover_call_graph",
    "recover_cfg",
    "resolve_table_via_dataflow",
    "solve",
    "table_load_slice",
    "verify_image",
]
