"""Static binary analysis over linked program images.

Recovers the structure the preconstruction hardware observes
dynamically — procedures, basic blocks, loops, calls — directly from a
:class:`~repro.program.image.ProgramImage`, and builds two consumers on
top of it:

* a **program verifier** (:mod:`repro.static.verifier`): named,
  severity-tagged lint rules guarding the structural invariants the
  simulator relies on, used as a post-generation gate and exposed via
  ``python -m repro analyze``;
* **static region seeding** (:mod:`repro.static.seeding`): the paper's
  region start points (call returns + loop exits, §3.1-§3.2) computed
  ahead of time to prime the preconstruction engine (``--static-seed``).
"""

from repro.static.callgraph import (
    CallSite,
    StaticCallGraph,
    recover_call_graph,
)
from repro.static.dominators import (
    DominatorTree,
    NaturalLoop,
    find_loops,
    irreducible_components,
    loop_depth_map,
)
from repro.static.recovery import (
    BlockInfo,
    ProcedureRange,
    RecoveredCFG,
    recover_cfg,
)
from repro.static.report import (
    StaticAnalysisReport,
    analyze_image,
    format_report,
)
from repro.static.seeding import StaticSeed, compute_static_seeds
from repro.static.verifier import (
    DEFAULT_RAS_DEPTH,
    LintFinding,
    Severity,
    VerificationReport,
    verify_image,
)

__all__ = [
    "BlockInfo",
    "CallSite",
    "DEFAULT_RAS_DEPTH",
    "DominatorTree",
    "LintFinding",
    "NaturalLoop",
    "ProcedureRange",
    "RecoveredCFG",
    "Severity",
    "StaticAnalysisReport",
    "StaticCallGraph",
    "StaticSeed",
    "VerificationReport",
    "analyze_image",
    "compute_static_seeds",
    "find_loops",
    "format_report",
    "irreducible_components",
    "loop_depth_map",
    "recover_call_graph",
    "recover_cfg",
    "verify_image",
]
