"""Static-analysis report: one-shot driver producing human/JSON output.

Bundles the recovered CFG, call graph, lint findings and static region
seeds for one image into a :class:`StaticAnalysisReport`, the payload
behind ``python -m repro analyze``.  The JSON form is fully
deterministic for a fixed workload seed (sorted keys, stable orders),
which the property-test suite relies on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.program.image import ProgramImage
from repro.static.callgraph import StaticCallGraph
from repro.static.dominators import DominatorTree, find_loops
from repro.static.recovery import RecoveredCFG
from repro.static.seeding import StaticSeed, compute_static_seeds
from repro.static.verifier import (
    DEFAULT_RAS_DEPTH,
    LintFinding,
    Severity,
    verify_image,
)

#: Version of the JSON payloads emitted by the static subsystem
#: (``repro analyze --json`` and ``repro predict --json``).  History:
#: 1 = unversioned analyze payload (pre-dataflow); 2 = ``schema_version``
#: field added, verifier expanded to 16 rules, predict payload added.
STATIC_SCHEMA_VERSION = 2


@dataclass
class StaticAnalysisReport:
    """Everything the static subsystem knows about one image."""

    name: str
    instructions: int
    procedures: int
    live_procedures: int
    dead_procedures: tuple[str, ...]
    basic_blocks: int
    natural_loops: int
    max_loop_depth: int
    call_sites: int
    indirect_call_sites: int
    max_call_depth: Optional[int]
    findings: list[LintFinding]
    seeds: list[StaticSeed]

    @property
    def errors(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        return not self.errors

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "schema_version": STATIC_SCHEMA_VERSION,
            "summary": {
                "instructions": self.instructions,
                "procedures": self.procedures,
                "live_procedures": self.live_procedures,
                "dead_procedures": list(self.dead_procedures),
                "basic_blocks": self.basic_blocks,
                "natural_loops": self.natural_loops,
                "max_loop_depth": self.max_loop_depth,
                "call_sites": self.call_sites,
                "indirect_call_sites": self.indirect_call_sites,
                "max_call_depth": self.max_call_depth,
                "static_seeds": len(self.seeds),
            },
            "findings": [f.to_dict() for f in self.findings],
            "seeds": [s.to_dict() for s in self.seeds],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)


def analyze_image(image: ProgramImage,
                  intents: Optional[Mapping[int, str]] = None,
                  name: str = "",
                  ras_depth: int = DEFAULT_RAS_DEPTH,
                  ) -> StaticAnalysisReport:
    """Run the full static pipeline over ``image``."""
    cfg = RecoveredCFG(image)
    graph = StaticCallGraph(cfg)
    report = verify_image(image, intents=intents, ras_depth=ras_depth,
                          cfg=cfg, callgraph=graph)
    seeds = compute_static_seeds(image, cfg=cfg, callgraph=graph)

    loops = 0
    max_depth = 0
    for proc in cfg.procedures:
        if proc.name not in graph.live or not cfg.reachable_blocks(proc):
            continue
        for loop in find_loops(DominatorTree(cfg, proc)):
            loops += 1
            max_depth = max(max_depth, loop.depth)

    return StaticAnalysisReport(
        name=name,
        instructions=len(image.instructions),
        procedures=len(cfg.procedures),
        live_procedures=len(graph.live),
        dead_procedures=report.dead_procedures,
        basic_blocks=len(cfg.blocks),
        natural_loops=loops,
        max_loop_depth=max_depth,
        call_sites=len(graph.sites),
        indirect_call_sites=sum(1 for s in graph.sites if s.indirect),
        max_call_depth=graph.max_call_depth,
        findings=report.findings,
        seeds=seeds,
    )


def format_report(report: StaticAnalysisReport) -> str:
    """Human-readable report text."""
    lines = [f"static analysis: {report.name or '<image>'}"]
    lines.append(
        f"  {report.instructions} instructions, "
        f"{report.procedures} procedures "
        f"({report.live_procedures} live), "
        f"{report.basic_blocks} basic blocks")
    depth = ("unbounded (recursive)" if report.max_call_depth is None
             else str(report.max_call_depth))
    lines.append(
        f"  {report.natural_loops} natural loops "
        f"(max nest {report.max_loop_depth}), "
        f"{report.call_sites} call sites "
        f"({report.indirect_call_sites} indirect), "
        f"call depth {depth}")
    if report.dead_procedures:
        lines.append("  unreferenced procedures: "
                     + ", ".join(report.dead_procedures))
    n_loop = sum(1 for s in report.seeds if s.kind == "loop_exit")
    lines.append(
        f"  {len(report.seeds)} static region seeds "
        f"({n_loop} loop exits, {len(report.seeds) - n_loop} call returns)")
    if report.findings:
        lines.append(f"  {len(report.findings)} findings:")
        for finding in report.findings:
            lines.append(f"    {finding}")
    else:
        lines.append("  no findings")
    return "\n".join(lines)
