"""Program verifier: named, severity-tagged lint rules over an image.

Machine-checks the structural invariants every other subsystem relies
on.  The workload generator runs this as a post-generation gate (any
ERROR aborts generation), and ``python -m repro analyze`` exposes it as
a lint report.  Each rule maps to a cue the paper's mechanisms depend
on:

=======  ========  ====================================================
Rule     Severity  Invariant (paper cue it protects)
=======  ========  ====================================================
SD001    ERROR     Control never flows across a procedure boundary
                   except through a call — a clobbered RET breaks the
                   call/return pairing the start-point stack and RAS
                   assume (§3.1).
SD002    WARNING   Every reachable RET belongs to a procedure some call
                   can enter (a return with no matching call underflows
                   the RAS).
SD003    WARNING   The static call-depth bound exists (no recursion)
                   and fits the return-address stack.
JT001    ERROR     Every jump-table / function-pointer relocation lands
                   on an instruction boundary inside the image — the
                   constructor walks these targets (§3.4).
DC001    WARNING   No unreachable code inside live procedures (the
                   generator must not emit blocks no path enters).
CF001    WARNING   All cycles are natural loops (irreducible control
                   flow defeats the backward-branch region cue).
CF002    ERROR     Direct branch/jump/call targets are instruction-
                   aligned addresses inside the image.
BB001    ERROR     The emitted branch pattern matches the generator's
                   bias intent — biased diamonds carry the strong mask,
                   weak diamonds the weak mask, loop back edges point
                   backward (the §3.4 bias heuristic keys off these).
SD004    ERROR     Every return path leaves SP exactly where the caller
                   had it (a skewed frame corrupts the callee-save
                   slots the call/return pairing depends on).  Degrades
                   to WARNING when balance merely cannot be proven.
SD005    ERROR     The return address consumed by a return is the entry
                   value or a frame restore — a RET through a clobbered
                   RA breaks the RAS pairing exactly like SD001.
JT002    ERROR     The value range of a jump-table index stays inside
                   the relocated table (an escaping index dispatches
                   through arbitrary data).
DF001    WARNING   No register is read while its only reaching
                   definition is the procedure entry and the procedure
                   never defines it (an uninitialised read executes on
                   whatever garbage the previous callee left).
DF002    INFO      Stores whose value is provably overwritten before
                   any read (write-after-write); generator filler emits
                   these by design, so informational only.
DF003    WARNING   No caller-live register is exposed to a callee that
                   may clobber it (a missing save slot).
CP001    INFO      No conditional branch is statically decided by the
                   value-range analysis (a constant branch carries no
                   bias information and wastes a predictor slot).
LT001    INFO      No counted loop is degenerate (trip bound ≤ 1: the
                   backward-branch region cue never fires for it).
=======  ========  ====================================================

The dataflow-backed rules (SD004 onward) pull liveness, reaching
definitions, value ranges, SP deltas, and interprocedural summaries
from one shared lazy :class:`~repro.static.analyses.StaticFacts`, so an
image is analysed once no matter how many rules run.

Procedures that are never referenced at all (no call edge, no
function-pointer table entry) are linker garbage, not findings; they
are reported via :attr:`VerificationReport.dead_procedures`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Optional

from repro.isa import INSTRUCTION_BYTES, Opcode
from repro.isa.registers import RA, SP, ZERO
from repro.program.image import ProgramImage
from repro.static.analyses import (
    ALL_REGS_MASK,
    BOTTOM,
    ENTRY_DEF,
    CallEffects,
    Interval,
    StaticFacts,
    mask_iter,
    mask_of,
    table_load_slice,
)
from repro.static.callgraph import StaticCallGraph
from repro.static.dominators import DominatorTree, irreducible_components
from repro.static.recovery import ProcedureRange, RecoveredCFG

#: Default return-address-stack depth checked by SD003 (matches
#: :class:`repro.branch.ReturnAddressStack`).
DEFAULT_RAS_DEPTH = 32

#: Branch-intent kinds recorded by the workload generator, with the
#: ANDI mask each diamond intent must carry.
STRONG_DIAMOND_MASK = 63
WEAK_DIAMOND_MASK = 1

#: Registers with process-global roles in the generated calling
#: convention: the hardwired zero, the data/scratch segment bases
#: (r13/r14), the driver's phase counter (r15), the shared data cursor
#: (r20), SP and RA.  They are initialised once by the startup stub (or
#: by the hardware, for SP/RA) and flow across every procedure, so
#: per-procedure def-use rules must not treat their entry values as
#: uninitialised or unpreserved.
CONVENTION_REGS = frozenset({ZERO, 13, 14, 15, 20, SP, RA})
CONVENTION_MASK = mask_of(iter(CONVENTION_REGS))


class Severity(enum.Enum):
    """Lint severity; ERROR findings abort workload generation."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at (usually) one instruction address."""

    rule_id: str
    severity: Severity
    message: str
    pc: Optional[int] = None
    procedure: Optional[str] = None

    def to_dict(self) -> dict[str, object]:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "pc": self.pc,
            "procedure": self.procedure,
        }

    def __str__(self) -> str:
        where = f" at {self.pc:#x}" if self.pc is not None else ""
        proc = f" [{self.procedure}]" if self.procedure else ""
        return (f"{self.rule_id} {self.severity.value}{where}{proc}: "
                f"{self.message}")


#: Conservative call effects for a site with no resolved targets.
_UNKNOWN_CALL = CallEffects(clobbered=ALL_REGS_MASK, used=ALL_REGS_MASK,
                            sp_balanced=False)


@dataclass
class VerifierContext:
    """Everything a rule may inspect."""

    image: ProgramImage
    cfg: RecoveredCFG
    callgraph: StaticCallGraph
    intents: Mapping[int, str]
    ras_depth: int
    _facts: Optional[StaticFacts] = None

    @property
    def facts(self) -> StaticFacts:
        """Lazy shared dataflow facts; built on first dataflow rule."""
        if self._facts is None:
            self._facts = StaticFacts(self.image, cfg=self.cfg,
                                      callgraph=self.callgraph)
        return self._facts

    def live_procedures(self) -> Iterator[ProcedureRange]:
        """Live procedures with at least one reachable block."""
        for proc in self.cfg.procedures:
            if (proc.name in self.callgraph.live
                    and self.cfg.reachable_blocks(proc)):
                yield proc


RuleFn = Callable[[VerifierContext], Iterator[LintFinding]]

#: Registry of (description, check) per rule ID, in report order.
RULES: dict[str, tuple[str, RuleFn]] = {}


def rule(rule_id: str, description: str) -> Callable[[RuleFn], RuleFn]:
    def register(fn: RuleFn) -> RuleFn:
        RULES[rule_id] = (description, fn)
        return fn
    return register


@dataclass
class VerificationReport:
    """Outcome of one verifier run."""

    findings: list[LintFinding] = field(default_factory=list)
    dead_procedures: tuple[str, ...] = ()
    rules_run: tuple[str, ...] = ()

    @property
    def errors(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        return not self.errors

    def by_rule(self, rule_id: str) -> list[LintFinding]:
        return [f for f in self.findings if f.rule_id == rule_id]


# ----------------------------------------------------------------------
# Stack discipline
# ----------------------------------------------------------------------
@rule("SD001", "control flow crosses a procedure boundary without a call")
def _check_boundary_flow(ctx: VerifierContext) -> Iterator[LintFinding]:
    cfg = ctx.cfg
    for proc in cfg.procedures:
        if proc.name not in ctx.callgraph.live:
            continue
        for start in sorted(cfg.reachable_blocks(proc)):
            block = cfg.blocks[start]
            if block.terminator == "end":
                yield LintFinding(
                    "SD001", Severity.ERROR,
                    "control runs off the end of the image",
                    pc=block.end - INSTRUCTION_BYTES, procedure=proc.name)
                continue
            for succ in block.successors:
                if succ not in proc:
                    yield LintFinding(
                        "SD001", Severity.ERROR,
                        f"{block.terminator} edge leaves "
                        f"{proc.name!r} for {succ:#x}",
                        pc=block.end - INSTRUCTION_BYTES,
                        procedure=proc.name)


@rule("SD002", "callable procedure with no reachable return")
def _check_return_matching(ctx: VerifierContext) -> Iterator[LintFinding]:
    cfg = ctx.cfg
    graph = ctx.callgraph
    callable_names = graph.call_target_names()
    entry = graph.entry_procedure
    # The startup stub and its direct target (the program's true entry)
    # may run forever by design; any other callable procedure must be
    # able to return, or the RAS entry its call pushed is never popped.
    exempt = {entry}
    if entry is not None:
        exempt.update(graph.edges.get(entry, ()))
    for proc in cfg.procedures:
        if proc.name not in graph.live or proc.name in exempt:
            continue
        if proc.name not in callable_names:
            continue
        reachable = cfg.reachable_blocks(proc)
        if not any(cfg.blocks[s].terminator == "return"
                   for s in reachable):
            yield LintFinding(
                "SD002", Severity.WARNING,
                f"callable procedure {proc.name!r} has no reachable "
                f"return (its RAS entry is never popped)",
                pc=proc.start, procedure=proc.name)


@rule("SD003", "static call depth unbounded or exceeds the RAS")
def _check_call_depth(ctx: VerifierContext) -> Iterator[LintFinding]:
    depth = ctx.callgraph.max_call_depth
    if depth is None:
        yield LintFinding(
            "SD003", Severity.WARNING,
            "recursive call graph: return-address-stack demand is "
            "unbounded")
    elif depth > ctx.ras_depth:
        yield LintFinding(
            "SD003", Severity.WARNING,
            f"static call depth {depth} exceeds the RAS depth "
            f"{ctx.ras_depth}")


@rule("SD004", "stack pointer not restored on a return path")
def _check_frame_balance(ctx: VerifierContext) -> Iterator[LintFinding]:
    """SP-delta facts at every reachable return must be exactly zero.

    A known non-zero delta is a proven frame skew (ERROR); an unknown
    delta (a non-idiomatic SP write, or a call whose callees cannot all
    be proven balanced) only warns — balance may hold dynamically, but
    nothing downstream may rely on it.
    """
    cfg = ctx.cfg
    for proc in ctx.live_procedures():
        sp = ctx.facts.sp_delta(proc)
        for start in sp.graph.nodes:
            block = cfg.blocks[start]
            if block.terminator != "return":
                continue
            delta = sp.out_facts[start]
            if delta is BOTTOM or delta == 0:
                continue
            ret_pc = block.end - INSTRUCTION_BYTES
            if isinstance(delta, int):
                yield LintFinding(
                    "SD004", Severity.ERROR,
                    f"return leaves SP displaced by {delta:+d} bytes "
                    f"from the caller's frame", pc=ret_pc,
                    procedure=proc.name)
            else:
                yield LintFinding(
                    "SD004", Severity.WARNING,
                    "cannot prove SP is restored on this return path",
                    pc=ret_pc, procedure=proc.name)


@rule("SD005", "return address clobbered on a path to a return")
def _check_return_address(ctx: VerifierContext) -> Iterator[LintFinding]:
    """Every definition of RA reaching a return must be the procedure
    entry value or a frame reload (``LW``); anything else — in
    particular a call's own link write surviving to the return — sends
    the return somewhere the matching call never came from."""
    cfg = ctx.cfg
    image = ctx.image
    for proc in ctx.live_procedures():
        reach = ctx.facts.reaching(proc)
        for start in reach.graph.nodes:
            block = cfg.blocks[start]
            if block.terminator != "return":
                continue
            ret_pc = block.end - INSTRUCTION_BYTES
            for pc, _inst, fact in reach.instruction_facts(cfg, start):
                if pc != ret_pc:
                    continue
                for def_pc in sorted(fact.get(RA, frozenset())):
                    if def_pc == ENTRY_DEF:
                        continue
                    def_inst = image.try_fetch(def_pc)
                    if def_inst is not None and def_inst.op is Opcode.LW:
                        continue
                    what = (def_inst.op.value if def_inst is not None
                            else "???")
                    yield LintFinding(
                        "SD005", Severity.ERROR,
                        f"RA consumed by this return may come from "
                        f"{def_pc:#x} ({what}), not the entry value "
                        f"or a frame restore", pc=ret_pc,
                        procedure=proc.name)


# ----------------------------------------------------------------------
# Jump tables / relocations
# ----------------------------------------------------------------------
@rule("JT001", "relocated code pointer not on an instruction boundary")
def _check_jump_tables(ctx: VerifierContext) -> Iterator[LintFinding]:
    image = ctx.image
    for data_addr in sorted(ctx.cfg.reloc_targets):
        target = ctx.cfg.reloc_targets[data_addr]
        if target not in image:
            yield LintFinding(
                "JT001", Severity.ERROR,
                f"table entry at data {data_addr:#x} resolves to "
                f"{target:#x}, not an instruction in the image",
                pc=target)


@rule("JT002", "jump-table index range escapes the relocated table")
def _check_table_index_range(ctx: VerifierContext) -> Iterator[LintFinding]:
    """When the value-range analysis bounds a jump-table load, every
    word the bounded address slice can touch must be a relocated code
    pointer; a slice word with no relocation means the masked index can
    select arbitrary data as a branch target."""
    cfg = ctx.cfg
    image = ctx.image
    for proc in ctx.live_procedures():
        for start in sorted(cfg.reachable_blocks(proc)):
            for pc in cfg.blocks[start].addresses():
                inst = image.try_fetch(pc)
                if inst is None or not inst.is_indirect or inst.is_return:
                    continue
                span = table_load_slice(ctx.facts, proc, pc)
                if span is None:
                    continue        # unresolved feeds; recovery's domain
                lo, hi = span
                missing = [addr for addr
                           in range(lo, hi + 1, INSTRUCTION_BYTES)
                           if addr not in cfg.reloc_targets]
                if missing:
                    yield LintFinding(
                        "JT002", Severity.ERROR,
                        f"index range reads table words "
                        f"[{lo:#x}, {hi:#x}] but "
                        f"{len(missing)} of them (first "
                        f"{missing[0]:#x}) hold no relocated code "
                        f"pointer", pc=pc, procedure=proc.name)


# ----------------------------------------------------------------------
# Dead code
# ----------------------------------------------------------------------
@rule("DC001", "unreachable code inside a live procedure")
def _check_dead_code(ctx: VerifierContext) -> Iterator[LintFinding]:
    cfg = ctx.cfg
    for proc in cfg.procedures:
        if proc.name not in ctx.callgraph.live:
            continue
        reachable = cfg.reachable_blocks(proc)
        dead = [b for b in cfg.proc_blocks(proc)
                if b.start not in reachable]
        for run_start, run_insts in _dead_runs(dead):
            yield LintFinding(
                "DC001", Severity.WARNING,
                f"{run_insts} unreachable instructions",
                pc=run_start, procedure=proc.name)


def _dead_runs(dead_blocks: list) -> Iterator[tuple[int, int]]:
    """Coalesce address-adjacent dead blocks into (start, count) runs."""
    run_start = run_end = None
    for block in sorted(dead_blocks, key=lambda b: b.start):
        if run_end == block.start:
            run_end = block.end
            continue
        if run_start is not None:
            yield run_start, (run_end - run_start) // INSTRUCTION_BYTES
        run_start, run_end = block.start, block.end
    if run_start is not None:
        yield run_start, (run_end - run_start) // INSTRUCTION_BYTES


# ----------------------------------------------------------------------
# Control flow shape
# ----------------------------------------------------------------------
@rule("CF001", "irreducible loop (cycle with multiple entry points)")
def _check_irreducible(ctx: VerifierContext) -> Iterator[LintFinding]:
    cfg = ctx.cfg
    for proc in cfg.procedures:
        if proc.name not in ctx.callgraph.live:
            continue
        if not cfg.reachable_blocks(proc):
            continue
        tree = DominatorTree(cfg, proc)
        for component in irreducible_components(tree):
            yield LintFinding(
                "CF001", Severity.WARNING,
                f"irreducible cycle over {len(component)} blocks",
                pc=min(component), procedure=proc.name)


@rule("CF002", "direct control-transfer target outside the image")
def _check_direct_targets(ctx: VerifierContext) -> Iterator[LintFinding]:
    image = ctx.image
    cfg = ctx.cfg
    for proc in cfg.procedures:
        if proc.name not in ctx.callgraph.live:
            continue
        for start in sorted(cfg.reachable_blocks(proc)):
            block = cfg.blocks[start]
            for pc in block.addresses():
                inst = image.try_fetch(pc)
                if inst is None or not inst.is_direct_control:
                    continue
                target = inst.taken_target(pc)
                if target is None:
                    continue
                if target not in image:
                    yield LintFinding(
                        "CF002", Severity.ERROR,
                        f"{inst.op.value} targets {target:#x}, outside "
                        f"the code segment", pc=pc, procedure=proc.name)


# ----------------------------------------------------------------------
# Branch-bias consistency (generator intent vs emitted code)
# ----------------------------------------------------------------------
_INTENT_KINDS = ("diamond_strong", "diamond_weak", "loop_back", "guard")


@rule("BB001", "emitted branch contradicts the generator's bias intent")
def _check_bias_consistency(ctx: VerifierContext) -> Iterator[LintFinding]:
    image = ctx.image
    for pc in sorted(ctx.intents):
        intent = ctx.intents[pc]
        inst = image.try_fetch(pc)
        proc = ctx.cfg.procedure_of(pc)
        proc_name = proc.name if proc else None
        if inst is None or not inst.is_conditional_branch:
            yield LintFinding(
                "BB001", Severity.ERROR,
                f"intent {intent!r} recorded at {pc:#x}, but no "
                f"conditional branch is there", pc=pc, procedure=proc_name)
            continue
        if intent == "loop_back":
            if inst.imm >= 0:
                yield LintFinding(
                    "BB001", Severity.ERROR,
                    "loop back edge emitted as a forward branch",
                    pc=pc, procedure=proc_name)
            continue
        if intent in ("diamond_strong", "diamond_weak"):
            want = (STRONG_DIAMOND_MASK if intent == "diamond_strong"
                    else WEAK_DIAMOND_MASK)
            mask = _preceding_andi_mask(image, pc)
            if mask != want:
                yield LintFinding(
                    "BB001", Severity.ERROR,
                    f"{intent} diamond carries test mask {mask!r}, "
                    f"expected {want}", pc=pc, procedure=proc_name)
            if inst.imm < 0:
                yield LintFinding(
                    "BB001", Severity.ERROR,
                    "diamond branch emitted as a backward branch",
                    pc=pc, procedure=proc_name)
            continue
        if intent == "guard":
            if inst.imm < 0:
                yield LintFinding(
                    "BB001", Severity.ERROR,
                    "phase-guard branch emitted as a backward branch",
                    pc=pc, procedure=proc_name)
            continue
        yield LintFinding(
            "BB001", Severity.ERROR,
            f"unknown branch intent {intent!r}", pc=pc,
            procedure=proc_name)


def _preceding_andi_mask(image: ProgramImage, pc: int) -> Optional[int]:
    """Immediate of the ANDI feeding a masked-test branch, if any."""
    prev = image.try_fetch(pc - INSTRUCTION_BYTES)
    if prev is not None and prev.op.value == "andi":
        return prev.imm
    return None


# ----------------------------------------------------------------------
# Dataflow rules (def-use discipline, value ranges, trip counts)
# ----------------------------------------------------------------------
@rule("DF001", "register read before any definition")
def _check_read_before_write(ctx: VerifierContext) -> Iterator[LintFinding]:
    """A read whose only reaching definition is the procedure entry, in
    a procedure that never defines the register itself, consumes
    whatever value the previous callee happened to leave.

    Exemptions: the convention registers (their entry values *are* the
    protocol), and the stored value of ``SW`` (spilling a caller's
    register into a save slot is exactly what callee-save prologues
    do).  Requiring *no* local definition at all keeps the generator's
    one-sided initialisation idiom (a local first defined inside one
    diamond arm, merged below the join) out of scope — the reaching set
    at such a merged read contains the arm's definition.
    """
    cfg = ctx.cfg
    image = ctx.image
    for proc in ctx.live_procedures():
        reach = ctx.facts.reaching(proc)
        nodes = reach.graph.nodes
        defined = 0
        for start in nodes:
            for pc in cfg.blocks[start].addresses():
                inst = image.try_fetch(pc)
                if inst is None:
                    continue
                dest = inst.destination_register()
                if dest is None and inst.is_call:
                    dest = RA
                if dest is not None:
                    defined |= 1 << dest
        entry_only = frozenset({ENTRY_DEF})
        flagged: dict[int, int] = {}        # reg -> first offending pc
        for start in nodes:
            for pc, inst, fact in reach.instruction_facts(cfg, start):
                for reg in inst.source_registers():
                    if reg in CONVENTION_REGS or (defined >> reg) & 1:
                        continue
                    if inst.op is Opcode.SW and reg == inst.rs2 \
                            and reg != inst.rs1:
                        continue
                    if fact.get(reg) == entry_only and reg not in flagged:
                        flagged[reg] = pc
        for reg, pc in sorted(flagged.items(), key=lambda kv: kv[1]):
            yield LintFinding(
                "DF001", Severity.WARNING,
                f"r{reg} is read but never defined in this procedure; "
                f"the read sees leftover state", pc=pc,
                procedure=proc.name)


@rule("DF002", "stored value overwritten before any read")
def _check_dead_stores(ctx: VerifierContext) -> Iterator[LintFinding]:
    """Write-after-write within one procedure: the liveness boundary is
    all-registers-live at exits, so anything flagged here is provably
    re-defined before any read on *every* path.  INFO only — the
    generator's filler instructions imitate computation and produce
    such stores by design; the rule exists to quantify them and to
    catch a future generator change that turns real state updates dead.
    """
    cfg = ctx.cfg
    for proc in ctx.live_procedures():
        live = ctx.facts.liveness(proc)
        for start in live.graph.nodes:
            for pc, inst, fact in live.instruction_facts(cfg, start):
                dest = inst.destination_register()
                if dest is None or inst.is_call:
                    continue
                if not (fact >> dest) & 1:
                    yield LintFinding(
                        "DF002", Severity.INFO,
                        f"value written to r{dest} is overwritten "
                        f"before any read", pc=pc, procedure=proc.name)


@rule("DF003", "caller-live register exposed to a clobbering callee")
def _check_live_across_call(ctx: VerifierContext) -> Iterator[LintFinding]:
    """Registers live after a call site that some possible callee may
    clobber (per the interprocedural summaries) need a save slot the
    code does not have.  Liveness here is the intra-procedural variant
    (exits dead): with the sound all-live exit boundary every register
    is "live" from its last write to the return and each trailing call
    would be flagged; a leftover value a *caller* consumes is DF001's
    read-before-write case in that caller.  Convention registers are
    exempt: they are *meant* to be advanced by callees (the cursor) or
    rewritten by the call itself (RA)."""
    cfg = ctx.cfg
    effects_map = ctx.facts.summaries.call_effects
    for proc in ctx.live_procedures():
        live = ctx.facts.liveness_local(proc)
        for start in live.graph.nodes:
            for pc, inst, fact in live.instruction_facts(cfg, start):
                if not inst.is_call:
                    continue
                effects = effects_map.get(pc, _UNKNOWN_CALL)
                hazard = fact & effects.clobbered & ~CONVENTION_MASK
                if hazard:
                    regs = ", ".join(f"r{r}" for r in mask_iter(hazard))
                    yield LintFinding(
                        "DF003", Severity.WARNING,
                        f"{regs} live across this call but may be "
                        f"clobbered by the callee", pc=pc,
                        procedure=proc.name)


def _branch_decided(op: Opcode, a: Interval,
                    b: Interval) -> Optional[bool]:
    """Whether interval facts statically decide a conditional branch."""
    disjoint = a.hi < b.lo or b.hi < a.lo
    both_const_eq = a.is_const and b.is_const and a.lo == b.lo
    if op is Opcode.BEQ:
        return True if both_const_eq else (False if disjoint else None)
    if op is Opcode.BNE:
        return True if disjoint else (False if both_const_eq else None)
    if op is Opcode.BLT:
        if a.hi < b.lo:
            return True
        return False if a.lo >= b.hi else None
    if op is Opcode.BGE:
        if a.lo >= b.hi:
            return True
        return False if a.hi < b.lo else None
    return None


@rule("CP001", "conditional branch statically decided")
def _check_constant_branches(ctx: VerifierContext) -> Iterator[LintFinding]:
    """A branch the value-range analysis already decides contributes no
    control-flow variation: it trains the bias tables on a constant and
    burns a conditional-branch slot the profile meant to be dynamic.
    INFO because single-trip loops (legitimate in fuzzed profiles)
    decide their own back edge."""
    cfg = ctx.cfg
    for proc in ctx.live_procedures():
        const = ctx.facts.constants(proc)
        for start in const.graph.nodes:
            for pc, inst, fact in const.instruction_facts(cfg, start):
                if not inst.is_conditional_branch:
                    continue
                if not isinstance(fact, dict):
                    continue
                a = (Interval(0, 0) if inst.rs1 == ZERO
                     else fact.get(inst.rs1))
                b = (Interval(0, 0) if inst.rs2 == ZERO
                     else fact.get(inst.rs2))
                if a is None or b is None:
                    continue
                decided = _branch_decided(inst.op, a, b)
                if decided is not None:
                    yield LintFinding(
                        "CP001", Severity.INFO,
                        f"branch is statically always "
                        f"{'taken' if decided else 'not taken'}",
                        pc=pc, procedure=proc.name)


@rule("LT001", "counted loop is degenerate (at most one trip)")
def _check_degenerate_loops(ctx: VerifierContext) -> Iterator[LintFinding]:
    """A counted loop whose trip bound proves the back edge can never
    be taken produces no backward-branch cue — the §3.1 region the
    profile asked for silently degrades to straight-line code.  INFO:
    fuzzed single-trip loops are legal inputs, just worth surfacing."""
    for proc in ctx.live_procedures():
        for header, bound in sorted(ctx.facts.trip_bounds(proc).items()):
            if bound.is_degenerate:
                yield LintFinding(
                    "LT001", Severity.INFO,
                    f"loop trip bounds [{bound.lo}, {bound.hi}]: the "
                    f"back edge is never taken", pc=header,
                    procedure=proc.name)


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def verify_image(image: ProgramImage,
                 intents: Optional[Mapping[int, str]] = None,
                 ras_depth: int = DEFAULT_RAS_DEPTH,
                 cfg: Optional[RecoveredCFG] = None,
                 callgraph: Optional[StaticCallGraph] = None,
                 ) -> VerificationReport:
    """Run every lint rule over ``image``; deterministic output order."""
    cfg = cfg or RecoveredCFG(image)
    graph = callgraph or StaticCallGraph(cfg)
    ctx = VerifierContext(image=image, cfg=cfg, callgraph=graph,
                          intents=dict(intents or {}),
                          ras_depth=ras_depth)
    findings: list[LintFinding] = []
    for rule_id, (_description, check) in RULES.items():
        findings.extend(check(ctx))
    findings.sort(key=lambda f: (f.severity.value, f.rule_id,
                                 f.pc if f.pc is not None else -1))
    return VerificationReport(findings=findings,
                              dead_procedures=graph.dead_procedures,
                              rules_run=tuple(RULES))
