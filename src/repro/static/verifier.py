"""Program verifier: named, severity-tagged lint rules over an image.

Machine-checks the structural invariants every other subsystem relies
on.  The workload generator runs this as a post-generation gate (any
ERROR aborts generation), and ``python -m repro analyze`` exposes it as
a lint report.  Each rule maps to a cue the paper's mechanisms depend
on:

=======  ========  ====================================================
Rule     Severity  Invariant (paper cue it protects)
=======  ========  ====================================================
SD001    ERROR     Control never flows across a procedure boundary
                   except through a call — a clobbered RET breaks the
                   call/return pairing the start-point stack and RAS
                   assume (§3.1).
SD002    WARNING   Every reachable RET belongs to a procedure some call
                   can enter (a return with no matching call underflows
                   the RAS).
SD003    WARNING   The static call-depth bound exists (no recursion)
                   and fits the return-address stack.
JT001    ERROR     Every jump-table / function-pointer relocation lands
                   on an instruction boundary inside the image — the
                   constructor walks these targets (§3.4).
DC001    WARNING   No unreachable code inside live procedures (the
                   generator must not emit blocks no path enters).
CF001    WARNING   All cycles are natural loops (irreducible control
                   flow defeats the backward-branch region cue).
CF002    ERROR     Direct branch/jump/call targets are instruction-
                   aligned addresses inside the image.
BB001    ERROR     The emitted branch pattern matches the generator's
                   bias intent — biased diamonds carry the strong mask,
                   weak diamonds the weak mask, loop back edges point
                   backward (the §3.4 bias heuristic keys off these).
=======  ========  ====================================================

Procedures that are never referenced at all (no call edge, no
function-pointer table entry) are linker garbage, not findings; they
are reported via :attr:`VerificationReport.dead_procedures`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Optional

from repro.isa import INSTRUCTION_BYTES
from repro.program.image import ProgramImage
from repro.static.callgraph import StaticCallGraph
from repro.static.dominators import DominatorTree, irreducible_components
from repro.static.recovery import RecoveredCFG

#: Default return-address-stack depth checked by SD003 (matches
#: :class:`repro.branch.ReturnAddressStack`).
DEFAULT_RAS_DEPTH = 32

#: Branch-intent kinds recorded by the workload generator, with the
#: ANDI mask each diamond intent must carry.
STRONG_DIAMOND_MASK = 63
WEAK_DIAMOND_MASK = 1


class Severity(enum.Enum):
    """Lint severity; ERROR findings abort workload generation."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at (usually) one instruction address."""

    rule_id: str
    severity: Severity
    message: str
    pc: Optional[int] = None
    procedure: Optional[str] = None

    def to_dict(self) -> dict[str, object]:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
            "pc": self.pc,
            "procedure": self.procedure,
        }

    def __str__(self) -> str:
        where = f" at {self.pc:#x}" if self.pc is not None else ""
        proc = f" [{self.procedure}]" if self.procedure else ""
        return (f"{self.rule_id} {self.severity.value}{where}{proc}: "
                f"{self.message}")


@dataclass
class VerifierContext:
    """Everything a rule may inspect."""

    image: ProgramImage
    cfg: RecoveredCFG
    callgraph: StaticCallGraph
    intents: Mapping[int, str]
    ras_depth: int


RuleFn = Callable[[VerifierContext], Iterator[LintFinding]]

#: Registry of (description, check) per rule ID, in report order.
RULES: dict[str, tuple[str, RuleFn]] = {}


def rule(rule_id: str, description: str) -> Callable[[RuleFn], RuleFn]:
    def register(fn: RuleFn) -> RuleFn:
        RULES[rule_id] = (description, fn)
        return fn
    return register


@dataclass
class VerificationReport:
    """Outcome of one verifier run."""

    findings: list[LintFinding] = field(default_factory=list)
    dead_procedures: tuple[str, ...] = ()
    rules_run: tuple[str, ...] = ()

    @property
    def errors(self) -> list[LintFinding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        return not self.errors

    def by_rule(self, rule_id: str) -> list[LintFinding]:
        return [f for f in self.findings if f.rule_id == rule_id]


# ----------------------------------------------------------------------
# Stack discipline
# ----------------------------------------------------------------------
@rule("SD001", "control flow crosses a procedure boundary without a call")
def _check_boundary_flow(ctx: VerifierContext) -> Iterator[LintFinding]:
    cfg = ctx.cfg
    for proc in cfg.procedures:
        if proc.name not in ctx.callgraph.live:
            continue
        for start in sorted(cfg.reachable_blocks(proc)):
            block = cfg.blocks[start]
            if block.terminator == "end":
                yield LintFinding(
                    "SD001", Severity.ERROR,
                    "control runs off the end of the image",
                    pc=block.end - INSTRUCTION_BYTES, procedure=proc.name)
                continue
            for succ in block.successors:
                if succ not in proc:
                    yield LintFinding(
                        "SD001", Severity.ERROR,
                        f"{block.terminator} edge leaves "
                        f"{proc.name!r} for {succ:#x}",
                        pc=block.end - INSTRUCTION_BYTES,
                        procedure=proc.name)


@rule("SD002", "callable procedure with no reachable return")
def _check_return_matching(ctx: VerifierContext) -> Iterator[LintFinding]:
    cfg = ctx.cfg
    graph = ctx.callgraph
    callable_names = graph.call_target_names()
    entry = graph.entry_procedure
    # The startup stub and its direct target (the program's true entry)
    # may run forever by design; any other callable procedure must be
    # able to return, or the RAS entry its call pushed is never popped.
    exempt = {entry}
    if entry is not None:
        exempt.update(graph.edges.get(entry, ()))
    for proc in cfg.procedures:
        if proc.name not in graph.live or proc.name in exempt:
            continue
        if proc.name not in callable_names:
            continue
        reachable = cfg.reachable_blocks(proc)
        if not any(cfg.blocks[s].terminator == "return"
                   for s in reachable):
            yield LintFinding(
                "SD002", Severity.WARNING,
                f"callable procedure {proc.name!r} has no reachable "
                f"return (its RAS entry is never popped)",
                pc=proc.start, procedure=proc.name)


@rule("SD003", "static call depth unbounded or exceeds the RAS")
def _check_call_depth(ctx: VerifierContext) -> Iterator[LintFinding]:
    depth = ctx.callgraph.max_call_depth
    if depth is None:
        yield LintFinding(
            "SD003", Severity.WARNING,
            "recursive call graph: return-address-stack demand is "
            "unbounded")
    elif depth > ctx.ras_depth:
        yield LintFinding(
            "SD003", Severity.WARNING,
            f"static call depth {depth} exceeds the RAS depth "
            f"{ctx.ras_depth}")


# ----------------------------------------------------------------------
# Jump tables / relocations
# ----------------------------------------------------------------------
@rule("JT001", "relocated code pointer not on an instruction boundary")
def _check_jump_tables(ctx: VerifierContext) -> Iterator[LintFinding]:
    image = ctx.image
    for data_addr in sorted(ctx.cfg.reloc_targets):
        target = ctx.cfg.reloc_targets[data_addr]
        if target not in image:
            yield LintFinding(
                "JT001", Severity.ERROR,
                f"table entry at data {data_addr:#x} resolves to "
                f"{target:#x}, not an instruction in the image",
                pc=target)


# ----------------------------------------------------------------------
# Dead code
# ----------------------------------------------------------------------
@rule("DC001", "unreachable code inside a live procedure")
def _check_dead_code(ctx: VerifierContext) -> Iterator[LintFinding]:
    cfg = ctx.cfg
    for proc in cfg.procedures:
        if proc.name not in ctx.callgraph.live:
            continue
        reachable = cfg.reachable_blocks(proc)
        dead = [b for b in cfg.proc_blocks(proc)
                if b.start not in reachable]
        for run_start, run_insts in _dead_runs(dead):
            yield LintFinding(
                "DC001", Severity.WARNING,
                f"{run_insts} unreachable instructions",
                pc=run_start, procedure=proc.name)


def _dead_runs(dead_blocks: list) -> Iterator[tuple[int, int]]:
    """Coalesce address-adjacent dead blocks into (start, count) runs."""
    run_start = run_end = None
    for block in sorted(dead_blocks, key=lambda b: b.start):
        if run_end == block.start:
            run_end = block.end
            continue
        if run_start is not None:
            yield run_start, (run_end - run_start) // INSTRUCTION_BYTES
        run_start, run_end = block.start, block.end
    if run_start is not None:
        yield run_start, (run_end - run_start) // INSTRUCTION_BYTES


# ----------------------------------------------------------------------
# Control flow shape
# ----------------------------------------------------------------------
@rule("CF001", "irreducible loop (cycle with multiple entry points)")
def _check_irreducible(ctx: VerifierContext) -> Iterator[LintFinding]:
    cfg = ctx.cfg
    for proc in cfg.procedures:
        if proc.name not in ctx.callgraph.live:
            continue
        if not cfg.reachable_blocks(proc):
            continue
        tree = DominatorTree(cfg, proc)
        for component in irreducible_components(tree):
            yield LintFinding(
                "CF001", Severity.WARNING,
                f"irreducible cycle over {len(component)} blocks",
                pc=min(component), procedure=proc.name)


@rule("CF002", "direct control-transfer target outside the image")
def _check_direct_targets(ctx: VerifierContext) -> Iterator[LintFinding]:
    image = ctx.image
    cfg = ctx.cfg
    for proc in cfg.procedures:
        if proc.name not in ctx.callgraph.live:
            continue
        for start in sorted(cfg.reachable_blocks(proc)):
            block = cfg.blocks[start]
            for pc in block.addresses():
                inst = image.try_fetch(pc)
                if inst is None or not inst.is_direct_control:
                    continue
                target = inst.taken_target(pc)
                if target is None:
                    continue
                if target not in image:
                    yield LintFinding(
                        "CF002", Severity.ERROR,
                        f"{inst.op.value} targets {target:#x}, outside "
                        f"the code segment", pc=pc, procedure=proc.name)


# ----------------------------------------------------------------------
# Branch-bias consistency (generator intent vs emitted code)
# ----------------------------------------------------------------------
_INTENT_KINDS = ("diamond_strong", "diamond_weak", "loop_back", "guard")


@rule("BB001", "emitted branch contradicts the generator's bias intent")
def _check_bias_consistency(ctx: VerifierContext) -> Iterator[LintFinding]:
    image = ctx.image
    for pc in sorted(ctx.intents):
        intent = ctx.intents[pc]
        inst = image.try_fetch(pc)
        proc = ctx.cfg.procedure_of(pc)
        proc_name = proc.name if proc else None
        if inst is None or not inst.is_conditional_branch:
            yield LintFinding(
                "BB001", Severity.ERROR,
                f"intent {intent!r} recorded at {pc:#x}, but no "
                f"conditional branch is there", pc=pc, procedure=proc_name)
            continue
        if intent == "loop_back":
            if inst.imm >= 0:
                yield LintFinding(
                    "BB001", Severity.ERROR,
                    "loop back edge emitted as a forward branch",
                    pc=pc, procedure=proc_name)
            continue
        if intent in ("diamond_strong", "diamond_weak"):
            want = (STRONG_DIAMOND_MASK if intent == "diamond_strong"
                    else WEAK_DIAMOND_MASK)
            mask = _preceding_andi_mask(image, pc)
            if mask != want:
                yield LintFinding(
                    "BB001", Severity.ERROR,
                    f"{intent} diamond carries test mask {mask!r}, "
                    f"expected {want}", pc=pc, procedure=proc_name)
            if inst.imm < 0:
                yield LintFinding(
                    "BB001", Severity.ERROR,
                    "diamond branch emitted as a backward branch",
                    pc=pc, procedure=proc_name)
            continue
        if intent == "guard":
            if inst.imm < 0:
                yield LintFinding(
                    "BB001", Severity.ERROR,
                    "phase-guard branch emitted as a backward branch",
                    pc=pc, procedure=proc_name)
            continue
        yield LintFinding(
            "BB001", Severity.ERROR,
            f"unknown branch intent {intent!r}", pc=pc,
            procedure=proc_name)


def _preceding_andi_mask(image: ProgramImage, pc: int) -> Optional[int]:
    """Immediate of the ANDI feeding a masked-test branch, if any."""
    prev = image.try_fetch(pc - INSTRUCTION_BYTES)
    if prev is not None and prev.op.value == "andi":
        return prev.imm
    return None


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def verify_image(image: ProgramImage,
                 intents: Optional[Mapping[int, str]] = None,
                 ras_depth: int = DEFAULT_RAS_DEPTH,
                 cfg: Optional[RecoveredCFG] = None,
                 callgraph: Optional[StaticCallGraph] = None,
                 ) -> VerificationReport:
    """Run every lint rule over ``image``; deterministic output order."""
    cfg = cfg or RecoveredCFG(image)
    graph = callgraph or StaticCallGraph(cfg)
    ctx = VerifierContext(image=image, cfg=cfg, callgraph=graph,
                          intents=dict(intents or {}),
                          ras_depth=ras_depth)
    findings: list[LintFinding] = []
    for rule_id, (_description, check) in RULES.items():
        findings.extend(check(ctx))
    findings.sort(key=lambda f: (f.severity.value, f.rule_id,
                                 f.pc if f.pc is not None else -1))
    return VerificationReport(findings=findings,
                              dead_procedures=graph.dead_procedures,
                              rules_run=tuple(RULES))
