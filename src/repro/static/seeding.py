"""Static region seeding: precompute the paper's region start points.

The preconstruction engine discovers region start points dynamically
(§3.1-§3.2): a dispatched *call* pushes its return point, a taken
*backward branch* pushes its fall-through (the loop exit).  Both cues
are visible statically — every call site and every natural-loop back
edge in the recovered CFG yields the same start point the hardware
would push — so the whole start-point population can be computed ahead
of time and used to seed the engine (``--static-seed`` mode).

Each seed carries a *static footprint estimate* (§3.2's region extent
made static): the number of instructions reachable from the seed
within its procedure, and the corresponding I-cache line count, which
is what bounds a region against its fill-up prefetch cache.

Seeds are returned best-first: loop exits of deeply nested loops ahead
of shallow ones ahead of call returns, larger footprints first within
a tier.  This approximates the newest-first hardware stack order, where
inner constructs are pushed (and therefore popped) closest to use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa import INSTRUCTION_BYTES, Kind
from repro.program.image import ProgramImage
from repro.static.callgraph import StaticCallGraph
from repro.static.dominators import DominatorTree, find_loops
from repro.static.recovery import ProcedureRange, RecoveredCFG

#: I-cache line size used for footprint line estimates (matches
#: :class:`repro.caches.ICacheConfig`'s 64-byte default).
LINE_BYTES = 64

#: Walk bound for footprint estimation (instructions).
FOOTPRINT_CAP = 2048


@dataclass(frozen=True)
class StaticSeed:
    """One statically computed region start point.

    ``kind`` is ``"call_return"`` (instruction after a call site) or
    ``"loop_exit"`` (fall-through of a loop-closing backward branch) —
    the exact addresses the engine's dispatch monitor would push.
    """

    pc: int
    kind: str
    procedure: str
    cue_pc: int                  # the call / backward branch itself
    loop_depth: int = 0
    footprint_instructions: int = 0

    @property
    def footprint_lines(self) -> int:
        return -(-self.footprint_instructions * INSTRUCTION_BYTES
                 // LINE_BYTES)

    def to_dict(self) -> dict[str, object]:
        return {
            "pc": self.pc,
            "kind": self.kind,
            "procedure": self.procedure,
            "cue_pc": self.cue_pc,
            "loop_depth": self.loop_depth,
            "footprint_instructions": self.footprint_instructions,
            "footprint_lines": self.footprint_lines,
        }


def compute_static_seeds(image: ProgramImage,
                         cfg: Optional[RecoveredCFG] = None,
                         callgraph: Optional[StaticCallGraph] = None,
                         ) -> list[StaticSeed]:
    """All static region start points of ``image``, best-first.

    Only live procedures contribute (the processor can never dispatch
    a cue from unreferenced code, so the hardware would never see those
    start points either).
    """
    cfg = cfg or RecoveredCFG(image)
    graph = callgraph or StaticCallGraph(cfg)
    seeds: list[StaticSeed] = []
    for proc in cfg.procedures:
        if proc.name not in graph.live:
            continue
        reachable = cfg.reachable_blocks(proc)
        if not reachable:
            continue
        tree = DominatorTree(cfg, proc)
        loops = find_loops(tree)
        depth_of_block: dict[int, int] = {}
        for loop in loops:
            for block in loop.body:
                depth_of_block[block] = max(depth_of_block.get(block, 0),
                                            loop.depth)

        # Loop exits: the fall-through of each back-edge branch.
        for loop in loops:
            for source, _header in loop.back_edges:
                block = cfg.blocks[source]
                branch_pc = block.end - INSTRUCTION_BYTES
                inst = image.try_fetch(branch_pc)
                if inst is None or inst.kind is not Kind.BRANCH:
                    continue   # back edge closed by a jump, not a branch
                exit_pc = branch_pc + INSTRUCTION_BYTES
                seeds.append(StaticSeed(
                    pc=exit_pc, kind="loop_exit", procedure=proc.name,
                    cue_pc=branch_pc, loop_depth=loop.depth,
                    footprint_instructions=_footprint(cfg, proc, exit_pc)))

        # Call returns: the instruction after every reachable call site.
        for block_start in sorted(reachable):
            block = cfg.blocks[block_start]
            for pc in block.addresses():
                inst = image.try_fetch(pc)
                if inst is None:
                    continue
                if inst.kind in (Kind.CALL, Kind.CALL_INDIRECT):
                    return_pc = pc + INSTRUCTION_BYTES
                    seeds.append(StaticSeed(
                        pc=return_pc, kind="call_return",
                        procedure=proc.name, cue_pc=pc,
                        loop_depth=depth_of_block.get(block_start, 0),
                        footprint_instructions=_footprint(cfg, proc,
                                                          return_pc)))

    seeds.sort(key=lambda s: (s.kind != "loop_exit", -s.loop_depth,
                              -s.footprint_instructions, s.pc))
    # A call at a block's end can make its return point coincide with a
    # loop exit; keep the highest-priority seed per address.
    seen: set[int] = set()
    unique: list[StaticSeed] = []
    for seed in seeds:
        if seed.pc not in seen:
            seen.add(seed.pc)
            unique.append(seed)
    return unique


def _footprint(cfg: RecoveredCFG, proc: ProcedureRange,
               start_pc: int) -> int:
    """Instructions statically reachable from ``start_pc`` inside its
    procedure (bounded at :data:`FOOTPRINT_CAP`)."""
    first = cfg.block_at(start_pc)
    if first is None:
        return 0
    count = (first.end - start_pc) // INSTRUCTION_BYTES
    seen = {first.start}
    work = [s for s in first.successors]
    while work and count < FOOTPRINT_CAP:
        addr = work.pop()
        block = cfg.block_at(addr)
        if block is None or block.start in seen or block.start not in proc:
            continue
        seen.add(block.start)
        count += block.instructions
        work.extend(block.successors)
    return min(count, FOOTPRINT_CAP)
