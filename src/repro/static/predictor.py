"""Static preconstruction-coverage prediction (§3.2 made whole-program).

The dynamic engine delimits traces with :class:`TraceBuilder`'s
stopping rules while the processor executes.  Everything those rules
consult — instruction kinds, backward-branch positions, lengths — is
static, so the complete population of traces the fill unit *can* build
is computable ahead of time by walking every static path with the same
rules.  This module performs that walk and emits:

* the predicted **trace start-point set** — a superset of every pc any
  dynamic trace can start at;
* the predicted **instruction coverage** — a superset of every pc the
  program can commit;
* a **trace working-set estimate** — the number of distinct delimited
  trace paths discovered (a lower bound: the state merging that keeps
  the walk polynomial can merge distinct dynamic identities);
* **per-region predictions** for each static region start point
  (:func:`repro.static.seeding.compute_static_seeds`): the region's
  trace count and reachable footprint, statically delimited exactly as
  the paper's constructor would walk it (§3.2 — a region extends
  through length cuts and direct calls, and is bounded by returns and
  indirect transfers).

Soundness argument for the continuation rebase: when the length rule
truncates at ``cut < n``, the builder keeps ``entries[cut:]`` buffered.
Those entries are ``(pc, image[pc], ...)`` tuples — pure functions of
their pcs — so the future behaviour of the buffer is identical to a
fresh builder started at ``pcs[cut]`` and fed the same path.  The walk
therefore records ``pcs[cut]`` as a new start point instead of carrying
buffers, without losing any reachable delimitation.

The containment guarantee (every dynamic trace start and committed pc
is predicted) is differentially validated by the static-vs-dynamic
coverage oracle in :mod:`repro.check.oracles`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.isa import INSTRUCTION_BYTES, Instruction, Kind
from repro.program.analysis import instruction_successors, \
    reachable_addresses
from repro.program.image import ProgramImage
from repro.static.analyses import StaticFacts, resolve_table_via_dataflow
from repro.static.recovery import ProcedureRange, resolve_indirect_table
from repro.static.seeding import StaticSeed, compute_static_seeds
from repro.trace.selection import SelectionConfig

#: Exploration bounds.  The walk is polynomial thanks to suffix-state
#: merging, but adversarial images (every instruction a branch) could
#: still be large; past these caps the prediction is marked incomplete
#: and the coverage oracle stops asserting containment.
MAX_STATES_PER_START = 20_000
MAX_TOTAL_STATES = 1_000_000
#: Bounds for the per-region walks (regions are small by construction);
#: a region that exceeds them is reported ``truncated`` rather than
#: silently clamped.
MAX_REGION_STARTS = 64
MAX_REGION_STATES = 5_000


@dataclass(frozen=True)
class RegionPrediction:
    """Statically delimited extent of one preconstruction region."""

    start_pc: int
    kind: str                     # "loop_exit" | "call_return" | "entry"
    procedure: str
    trace_count: int
    covered_instructions: int
    footprint_instructions: int   # seed's block-level footprint estimate
    truncated: bool = False       # walk hit a region bound; counts are lower

    def to_dict(self) -> dict[str, object]:
        return {
            "covered_instructions": self.covered_instructions,
            "footprint_instructions": self.footprint_instructions,
            "kind": self.kind,
            "procedure": self.procedure,
            "start_pc": self.start_pc,
            "trace_count": self.trace_count,
            "truncated": self.truncated,
        }


@dataclass(frozen=True)
class CoveragePrediction:
    """The static prediction of everything trace selection can produce."""

    config: SelectionConfig
    entry: int
    start_pcs: frozenset[int]
    covered_pcs: frozenset[int]
    trace_count: int
    regions: tuple[RegionPrediction, ...]
    live_pcs: frozenset[int]      # reachable-from-entry instruction pcs
    complete: bool
    states_explored: int

    # -- containment queries (the oracle's interface) ------------------
    def predicts_start(self, pc: int) -> bool:
        return pc in self.start_pcs

    def covers(self, pc: int) -> bool:
        return pc in self.covered_pcs

    @property
    def coverage_ratio(self) -> float:
        """Fraction of live code predicted to be executed."""
        if not self.live_pcs:
            return 0.0
        return len(self.covered_pcs & self.live_pcs) / len(self.live_pcs)

    @property
    def overapproximation_ratio(self) -> float:
        """Predicted coverage relative to live code; > 1 means the
        prediction claims pcs no dynamic execution can reach."""
        if not self.live_pcs:
            return 0.0
        return len(self.covered_pcs) / len(self.live_pcs)

    # -- serialisation -------------------------------------------------
    def summary_dict(self) -> dict[str, object]:
        """Compact, digest-based form for golden files and CI diffs."""
        return {
            "complete": self.complete,
            "config": {
                "align_multiple": self.config.align_multiple,
                "end_at_indirect": self.config.end_at_indirect,
                "end_at_returns": self.config.end_at_returns,
                "max_length": self.config.max_length,
            },
            "coverage_ratio": round(self.coverage_ratio, 6),
            "covered_count": len(self.covered_pcs),
            "covered_digest": _digest(self.covered_pcs),
            "entry": self.entry,
            "live_count": len(self.live_pcs),
            "region_count": len(self.regions),
            "regions_digest": _digest(
                (r.start_pc, r.trace_count, r.covered_instructions)
                for r in self.regions),
            "start_count": len(self.start_pcs),
            "start_digest": _digest(self.start_pcs),
            "trace_count": self.trace_count,
        }

    def to_dict(self) -> dict[str, object]:
        out = self.summary_dict()
        out["regions"] = [r.to_dict() for r in self.regions]
        out["states_explored"] = self.states_explored
        return out


def _digest(values: Iterable[object]) -> str:
    text = ",".join(repr(v) for v in sorted(values))  # type: ignore[type-var]
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def format_prediction(prediction: CoveragePrediction,
                      name: str = "") -> str:
    """Human-readable prediction text (``python -m repro predict``)."""
    lines = [f"static coverage prediction: {name or '<image>'}"]
    lines.append(
        f"  entry 0x{prediction.entry:04x}, "
        f"{len(prediction.start_pcs)} trace start points, "
        f"{prediction.trace_count} distinct traces")
    lines.append(
        f"  {len(prediction.covered_pcs)} instructions covered / "
        f"{len(prediction.live_pcs)} live "
        f"({prediction.coverage_ratio:.1%} of live code, "
        f"{prediction.overapproximation_ratio:.3f}x overapproximation)")
    status = "complete" if prediction.complete \
        else "INCOMPLETE (state budget exhausted)"
    lines.append(f"  exploration {status}: "
                 f"{prediction.states_explored} states")
    lines.append(f"  {len(prediction.regions)} preconstruction regions:")
    for region in prediction.regions:
        mark = "  [truncated]" if region.truncated else ""
        lines.append(
            f"    0x{region.start_pc:04x}  {region.kind:<11s} "
            f"{region.procedure:<16s} traces={region.trace_count:<4d} "
            f"covered={region.covered_instructions:<4d} "
            f"footprint={region.footprint_instructions}{mark}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The walk
# ---------------------------------------------------------------------------
@dataclass
class _Walk:
    """Shared state of one whole-image prediction walk."""

    image: ProgramImage
    facts: StaticFacts
    config: SelectionConfig
    covered: set[int] = field(default_factory=set)
    traces: set[tuple[int, ...]] = field(default_factory=set)
    states: int = 0
    complete: bool = True

    def __post_init__(self) -> None:
        cfg = self.facts.cfg
        #: Return points of every call site in a *live* caller, keyed
        #: by callee name.  A dynamic return can only transfer to a
        #: caller that actually called, and only live procedures ever
        #: execute a call — so restricting to live callers is sound and
        #: keeps dead linker garbage out of the prediction.
        self.return_targets: dict[str, tuple[int, ...]] = {}
        live = self.facts.callgraph.live
        by_callee: dict[str, set[int]] = {}
        for site in self.facts.callgraph.sites:
            if site.caller not in live:
                continue
            for callee in site.targets:
                by_callee.setdefault(callee, set()).add(
                    site.pc + INSTRUCTION_BYTES)
        self.return_targets = {name: tuple(sorted(pcs))
                               for name, pcs in by_callee.items()}
        self.fptr_entries: tuple[int, ...] = cfg.entry_targets()
        self._succ_cache: dict[int, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    def successors(self, pc: int, inst: Instruction) -> tuple[int, ...]:
        """Dynamic may-successors of ``pc`` inside the trace stream."""
        cached = self._succ_cache.get(pc)
        if cached is not None:
            return cached
        cfg = self.facts.cfg
        if inst.is_return:
            proc = cfg.procedure_of(pc)
            out: tuple[int, ...] = () if proc is None \
                else self.return_targets.get(proc.name, ())
        elif inst.kind is Kind.CALL_INDIRECT:
            out = self._indirect_targets(pc) or self.fptr_entries
        elif inst.kind is Kind.JUMP_INDIRECT:
            block = cfg.block_at(pc)
            out = block.successors if block is not None else ()
        else:
            out = instruction_successors(self.image, pc)
        self._succ_cache[pc] = out
        return out

    def _indirect_targets(self, pc: int) -> tuple[int, ...]:
        cfg = self.facts.cfg
        resolved = resolve_indirect_table(self.image, pc,
                                          cfg.reloc_targets)
        if resolved is None:
            proc = cfg.procedure_of(pc)
            if proc is not None:
                resolved = resolve_table_via_dataflow(self.facts, proc,
                                                      pc)
        return tuple(sorted(set(resolved))) if resolved else ()

    # ------------------------------------------------------------------
    def aligned_cut(self, insts: list[Instruction]) -> int:
        """Mirror of :meth:`TraceBuilder._aligned_cut`."""
        n = len(insts)
        align = self.config.align_multiple
        if not align:
            return n
        last_backward = None
        for i in range(n - 1, -1, -1):
            if insts[i].is_backward:
                last_backward = i
                break
        if last_backward is None:
            return n
        beyond = n - last_backward - 1
        return last_backward + 1 + (beyond // align) * align

    def explore(self, start: int, region: bool = False,
                ) -> tuple[set[int], int, bool]:
        """All static trace paths from ``start``; returns the set of
        follow-on start points, the number of traces emitted, and
        whether the walk was truncated by a budget.

        ``region`` restricts the follow-on set to length-rule
        continuations (the region-bounding rules of §2.2: returns and
        indirect transfers end the region) and charges the walk to a
        separate budget — a truncated region estimate does not weaken
        the whole-image containment claim.
        """
        config = self.config
        new_starts: set[int] = set()
        emitted = 0
        truncated = False
        visited: set[tuple[object, ...]] = set()
        stack: list[tuple[int, ...]] = [(start,)]
        budget = MAX_REGION_STATES if region else MAX_STATES_PER_START
        spent = 0
        while stack:
            path = stack.pop()
            spent += 1
            if not region:
                self.states += 1
            if spent > budget or (not region
                                  and self.states > MAX_TOTAL_STATES):
                truncated = True
                if not region:
                    self.complete = False
                break
            pc = path[-1]
            inst = self.image.try_fetch(pc)
            if inst is None:
                continue            # ran off the image: verifier territory
            self.covered.add(pc)
            insts = [i for i in
                     (self.image.try_fetch(p) for p in path)
                     if i is not None]
            n = len(path)
            if inst.is_return and config.end_at_returns:
                self.traces.add(path)
                emitted += 1
                if not region:
                    new_starts.update(self.successors(pc, inst))
                continue
            if inst.is_indirect and config.end_at_indirect:
                self.traces.add(path)
                emitted += 1
                if not region:
                    new_starts.update(self.successors(pc, inst))
                continue
            if n >= config.max_length:
                cut = self.aligned_cut(insts)
                self.traces.add(path[:cut])
                emitted += 1
                if cut < n:
                    new_starts.add(path[cut])
                else:
                    new_starts.update(self.successors(pc, inst))
                continue
            if inst.kind is Kind.HALT:
                continue            # stream ends; flush is partial-only
            for succ in self.successors(pc, inst):
                nxt = path + (succ,)
                key = self._state_key(nxt, insts, inst)
                if key not in visited:
                    visited.add(key)
                    stack.append(nxt)
        return new_starts, emitted, truncated

    @staticmethod
    def _state_key(path: tuple[int, ...], insts: list[Instruction],
                   last: Instruction) -> tuple[object, ...]:
        """Future-exact merge key for a partial trace path.

        Delimitation from here on depends only on the current pc, the
        buffered length, and the pcs after the last backward branch
        (the only candidates for an aligned-cut continuation start).
        """
        lb = None
        for i in range(len(insts) - 1, -1, -1):
            if insts[i].is_backward:
                lb = i
                break
        if lb is None:
            return (path[-1], len(path))
        return (path[-1], len(path), lb, path[lb + 1:])


def predict_coverage(image: ProgramImage,
                     config: Optional[SelectionConfig] = None,
                     facts: Optional[StaticFacts] = None,
                     ) -> CoveragePrediction:
    """Statically predict the full trace population of ``image``.

    The start-point closure begins at the image entry plus every static
    region seed (§3.2's start-point population) and follows the
    continuation starts each explored start produces, until closed.
    """
    config = config or SelectionConfig()
    facts = facts or StaticFacts(image)
    walk = _Walk(image=image, facts=facts, config=config)
    seeds = compute_static_seeds(image, facts.cfg, facts.callgraph)

    pending: list[int] = [image.entry]
    pending.extend(seed.pc for seed in seeds)
    starts: set[int] = set()
    while pending:
        start = pending.pop()
        if start in starts or image.try_fetch(start) is None:
            continue
        starts.add(start)
        follow_on, _, _ = walk.explore(start)
        pending.extend(sorted(follow_on - starts))

    regions = [_predict_region(walk, seed) for seed in seeds]
    entry_proc = facts.cfg.procedure_of(image.entry)
    regions.insert(0, _entry_region(walk, image.entry, entry_proc))

    return CoveragePrediction(
        config=config,
        entry=image.entry,
        start_pcs=frozenset(starts),
        covered_pcs=frozenset(walk.covered),
        trace_count=len(walk.traces),
        regions=tuple(regions),
        live_pcs=frozenset(reachable_addresses(image)),
        complete=walk.complete,
        states_explored=walk.states,
    )


def _predict_region(walk: _Walk, seed: StaticSeed) -> RegionPrediction:
    covered, traces, truncated = _region_walk(walk, seed.pc)
    return RegionPrediction(
        start_pc=seed.pc, kind=seed.kind, procedure=seed.procedure,
        trace_count=traces, covered_instructions=len(covered),
        footprint_instructions=seed.footprint_instructions,
        truncated=truncated)


def _entry_region(walk: _Walk, entry: int,
                  proc: Optional[ProcedureRange]) -> RegionPrediction:
    """The program's first region: preconstruction-free startup."""
    covered, traces, truncated = _region_walk(walk, entry)
    return RegionPrediction(
        start_pc=entry, kind="entry",
        procedure=proc.name if proc is not None else "?",
        trace_count=traces, covered_instructions=len(covered),
        footprint_instructions=len(covered), truncated=truncated)


def _region_walk(walk: _Walk, start: int) -> tuple[set[int], int, bool]:
    """Delimit one region: follow length-rule continuations only."""
    saved = walk.covered
    walk.covered = set()
    try:
        starts: set[int] = set()
        pending = [start]
        traces = 0
        truncated = False
        while pending:
            if len(starts) >= MAX_REGION_STARTS:
                truncated = True
                break
            pc = pending.pop()
            if pc in starts or walk.image.try_fetch(pc) is None:
                continue
            starts.add(pc)
            follow_on, emitted, cut_short = walk.explore(pc, region=True)
            traces += emitted
            truncated = truncated or cut_short
            pending.extend(sorted(follow_on - starts))
        return walk.covered, traces, truncated
    finally:
        walk.covered = saved | walk.covered
