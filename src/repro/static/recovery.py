"""Whole-program CFG recovery from a linked :class:`ProgramImage`.

The preconstruction engine discovers program structure *dynamically*
(calls and taken backward branches in the dispatch stream, §3.1-§3.2 of
the paper).  This module recovers the same structure *statically*:
procedures are partitioned by their entry labels, basic blocks are
discovered from control-transfer targets (no reliance on block labels),
and register-indirect jumps are resolved through the image's data
relocations (switch tables resolve to in-procedure targets, function-
pointer tables to procedure entries).

The recovered CFG is the substrate for dominator/loop analysis
(:mod:`repro.static.dominators`), the program verifier
(:mod:`repro.static.verifier`), and static region seeding
(:mod:`repro.static.seeding`).

Modelling conventions (matching the generator's code shapes and the
constructor's walk in :mod:`repro.core.preconstructor`):

* Direct and indirect *calls* (``JAL``/``JALR``) do not terminate basic
  blocks; their interprocedural edge lives in the call graph and the
  block continues at the return point.
* ``JR`` that is not a return is a *switch*: its successors are the
  relocated data words that land inside the enclosing procedure.
* ``JR ra`` (return) and ``HALT`` end a block with no successors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.isa import INSTRUCTION_BYTES, Kind, Opcode
from repro.program.image import ProgramImage

#: Name of the synthetic procedure covering code before the first label
#: (the startup stub emitted by the layout pass).
START_PROC = "_start"


@dataclass(frozen=True)
class ProcedureRange:
    """One procedure's address span ``[start, end)``."""

    name: str
    start: int
    end: int

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc < self.end

    @property
    def instructions(self) -> int:
        return (self.end - self.start) // INSTRUCTION_BYTES


@dataclass(frozen=True)
class BlockInfo:
    """One recovered basic block.

    ``successors`` are intra-procedure control-flow edges (byte
    addresses); a successor outside the owning procedure's range is a
    discipline violation the verifier flags.  ``terminator`` is one of
    ``"fallthrough"``, ``"branch"``, ``"jump"``, ``"return"``,
    ``"switch"``, ``"halt"`` or ``"end"`` (ran off the end of the
    procedure or image with no control instruction).
    """

    start: int
    end: int                       # exclusive byte address
    successors: tuple[int, ...]
    terminator: str
    procedure: str

    @property
    def instructions(self) -> int:
        return (self.end - self.start) // INSTRUCTION_BYTES

    def addresses(self) -> Iterator[int]:
        return iter(range(self.start, self.end, INSTRUCTION_BYTES))


class RecoveredCFG:
    """Basic blocks, procedure ranges, and indirect-target resolution."""

    def __init__(self, image: ProgramImage) -> None:
        self.image = image
        self.procedures: list[ProcedureRange] = _procedure_ranges(image)
        self._proc_by_name = {p.name: p for p in self.procedures}
        #: Relocated code addresses (jump/function-pointer table entries),
        #: keyed by data address.  Uses true relocation provenance when
        #: the image records it; otherwise falls back to scanning data
        #: values (conservative, as :func:`reachable_addresses` does).
        self.reloc_targets: dict[int, int] = _reloc_targets(image)
        self.blocks: dict[int, BlockInfo] = {}
        self._block_of: dict[int, int] = {}   # any pc -> block start
        for proc in self.procedures:
            self._discover_blocks(proc)
        self._predecessors: dict[int, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def procedure_of(self, pc: int) -> Optional[ProcedureRange]:
        for proc in self.procedures:
            if pc in proc:
                return proc
        return None

    def procedure(self, name: str) -> ProcedureRange:
        return self._proc_by_name[name]

    def block_at(self, pc: int) -> Optional[BlockInfo]:
        """The block containing ``pc`` (not necessarily its start)."""
        start = self._block_of.get(pc)
        return self.blocks[start] if start is not None else None

    def proc_blocks(self, proc: ProcedureRange) -> list[BlockInfo]:
        """Blocks of ``proc`` in address order."""
        return [b for b in self.blocks.values()
                if proc.start <= b.start < proc.end]

    def predecessors(self, block_start: int) -> tuple[int, ...]:
        if not self._predecessors:
            preds: dict[int, list[int]] = {s: [] for s in self.blocks}
            for block in self.blocks.values():
                for succ in block.successors:
                    if succ in preds:
                        preds[succ].append(block.start)
            self._predecessors = {s: tuple(p) for s, p in preds.items()}
        return self._predecessors.get(block_start, ())

    # ------------------------------------------------------------------
    # Per-procedure reachability (intra-procedure edges only).
    # ------------------------------------------------------------------
    def reachable_blocks(self, proc: ProcedureRange) -> set[int]:
        """Block starts reachable from ``proc``'s entry block."""
        if proc.start not in self.blocks:
            return set()
        seen: set[int] = set()
        work = [proc.start]
        while work:
            start = work.pop()
            if start in seen or start not in self.blocks:
                continue
            seen.add(start)
            for succ in self.blocks[start].successors:
                succ_block = self._block_of.get(succ)
                if succ_block is not None and succ_block in proc:
                    work.append(succ_block)
        return seen

    # ------------------------------------------------------------------
    # Switch resolution: in-procedure relocated targets.
    # ------------------------------------------------------------------
    def switch_targets(self, proc: ProcedureRange) -> tuple[int, ...]:
        """Relocated code addresses landing inside ``proc`` (sorted)."""
        return tuple(sorted({t for t in self.reloc_targets.values()
                             if t in proc}))

    def entry_targets(self) -> tuple[int, ...]:
        """Relocated procedure entries (function-pointer candidates)."""
        entries = {p.start for p in self.procedures}
        return tuple(sorted({t for t in self.reloc_targets.values()
                             if t in entries}))

    # ------------------------------------------------------------------
    # Block discovery
    # ------------------------------------------------------------------
    def _discover_blocks(self, proc: ProcedureRange) -> None:
        image = self.image
        leaders = {proc.start}
        switch_targets = {t for t in self.reloc_targets.values()
                          if t in proc}
        leaders |= switch_targets
        ends: set[int] = set()   # addresses of block-ending instructions
        for pc in range(proc.start, proc.end, INSTRUCTION_BYTES):
            inst = image.try_fetch(pc)
            if inst is None:
                continue
            kind = inst.kind
            if kind is Kind.BRANCH:
                target = pc + inst.imm
                if target in proc:
                    leaders.add(target)
                leaders.add(pc + INSTRUCTION_BYTES)
                ends.add(pc)
            elif kind is Kind.JUMP:
                if inst.imm in proc:
                    leaders.add(inst.imm)
                leaders.add(pc + INSTRUCTION_BYTES)
                ends.add(pc)
            elif kind in (Kind.JUMP_INDIRECT, Kind.HALT):
                leaders.add(pc + INSTRUCTION_BYTES)
                ends.add(pc)
            # CALL / CALL_INDIRECT fall through: the block continues at
            # the return point, mirroring the constructor's walk.
        leaders = {pc for pc in leaders if pc in proc}

        for start in sorted(leaders):
            end = start
            while end < proc.end:
                if end in ends:
                    end += INSTRUCTION_BYTES
                    break
                end += INSTRUCTION_BYTES
                if end in leaders:
                    break
            block = self._make_block(proc, start, end, switch_targets)
            self.blocks[start] = block
            for pc in range(start, end, INSTRUCTION_BYTES):
                self._block_of[pc] = start

    def _make_block(self, proc: ProcedureRange, start: int, end: int,
                    switch_targets: set[int]) -> BlockInfo:
        last_pc = end - INSTRUCTION_BYTES
        inst = self.image.try_fetch(last_pc)
        fall = end
        if inst is None:
            return BlockInfo(start, end, (), "end", proc.name)
        kind = inst.kind
        if kind is Kind.BRANCH:
            return BlockInfo(start, end, (last_pc + inst.imm, fall),
                             "branch", proc.name)
        if kind is Kind.JUMP:
            return BlockInfo(start, end, (inst.imm,), "jump", proc.name)
        if kind is Kind.JUMP_INDIRECT:
            if inst.is_return:
                return BlockInfo(start, end, (), "return", proc.name)
            resolved = resolve_indirect_table(self.image, last_pc,
                                              self.reloc_targets)
            if resolved is not None:
                targets = {t for t in resolved if t in proc}
            else:
                targets = switch_targets
            return BlockInfo(start, end, tuple(sorted(targets)),
                             "switch", proc.name)
        if kind is Kind.HALT:
            return BlockInfo(start, end, (), "halt", proc.name)
        # Block ended because the next address is a leader (or the
        # procedure/image ran out).
        if fall < proc.end:
            return BlockInfo(start, end, (fall,), "fallthrough", proc.name)
        if self.image.try_fetch(fall) is not None:
            # Sequential flow crosses the procedure boundary — recorded
            # so the verifier can flag it (SD001).
            return BlockInfo(start, end, (fall,), "fallthrough", proc.name)
        return BlockInfo(start, end, (), "end", proc.name)


#: Backward-scan window for table-base resolution (instructions).
_RESOLVE_WINDOW = 16


def resolve_indirect_table(image: ProgramImage, pc: int,
                           reloc_targets: dict[int, int],
                           ) -> Optional[tuple[int, ...]]:
    """Resolve the table feeding the indirect jump/call at ``pc``.

    Table dispatch follows the standard idiom: mask an index (``ANDI``),
    scale it (``SLLI``), materialise the table base (``LUI``+``ORI``),
    index (``ADD``), load (``LW``), transfer (``JR``/``JALR``).  This
    walks backward from ``pc`` propagating those constants; when the
    pattern matches, the exact table entries (and nothing else) are the
    successor set.  Returns ``None`` when the producer chain cannot be
    recovered — callers then fall back to the conservative union of all
    relocated targets.
    """
    inst = image.try_fetch(pc)
    if inst is None or not inst.is_indirect:
        return None
    target_reg = inst.rs1
    base_reg: Optional[int] = None
    index_reg: Optional[int] = None
    count: Optional[int] = None
    hi: Optional[int] = None
    lo = 0
    offset = 0
    scan = pc
    for _ in range(_RESOLVE_WINDOW):
        scan -= INSTRUCTION_BYTES
        prev = image.try_fetch(scan)
        if prev is None:
            break
        op = prev.op
        if base_reg is None:
            # Looking for the load that produced the transfer target.
            if op is Opcode.LW and prev.rd == target_reg:
                base_reg = prev.rs1
                offset = prev.imm
            elif prev.destination_register() == target_reg:
                return None     # target produced by something else
            continue
        if hi is None:
            # Looking for the base address: ADD folds in the scaled
            # index, ORI the low half, LUI the high half (terminal).
            if (op is Opcode.ADD and prev.rd == base_reg
                    and base_reg in (prev.rs1, prev.rs2)):
                index_reg = (prev.rs2 if prev.rs1 == base_reg
                             else prev.rs1)
            elif (op is Opcode.ORI and prev.rd == base_reg
                    and prev.rs1 == base_reg):
                lo = prev.imm
            elif op is Opcode.LUI and prev.rd == base_reg:
                hi = prev.imm
            elif prev.destination_register() == base_reg:
                return None     # base produced by something else
            continue
        # Base fully known; the index mask bounds the table size.
        if (op is Opcode.ANDI and index_reg is not None
                and prev.rd == index_reg and prev.rs1 == index_reg):
            count = prev.imm + 1
            break
    if hi is None:
        return None
    table = ((hi << 16) | (lo & 0xFFFF)) + offset
    targets: list[int] = []
    if count is not None:
        for i in range(count):
            addr = table + i * INSTRUCTION_BYTES
            if addr not in reloc_targets:
                return None     # table shorter than the index range
            targets.append(reloc_targets[addr])
    else:
        # Unknown bound: take the contiguous relocated run.
        addr = table
        while addr in reloc_targets:
            targets.append(reloc_targets[addr])
            addr += INSTRUCTION_BYTES
        if not targets:
            return None
    return tuple(targets)


def _procedure_ranges(image: ProgramImage) -> list[ProcedureRange]:
    """Partition the code segment into procedures by entry labels.

    Labels containing ``":"`` are interior block labels; the rest are
    procedure entries.  Code before the first entry (the startup stub)
    becomes the synthetic :data:`START_PROC` procedure.
    """
    entries = sorted((addr, name) for name, addr in image.labels.items()
                     if ":" not in name and addr in image)
    ranges: list[ProcedureRange] = []
    code_end = image.code_end
    if not entries:
        if image.code_size:
            ranges.append(ProcedureRange(START_PROC, image.code_base,
                                         code_end))
        return ranges
    first_addr = entries[0][0]
    if first_addr > image.code_base:
        ranges.append(ProcedureRange(START_PROC, image.code_base,
                                     first_addr))
    for i, (addr, name) in enumerate(entries):
        end = entries[i + 1][0] if i + 1 < len(entries) else code_end
        ranges.append(ProcedureRange(name, addr, end))
    return ranges


def _reloc_targets(image: ProgramImage) -> dict[int, int]:
    """Data words holding code addresses, keyed by data address.

    Prefers the image's recorded relocations (exact provenance from the
    layout pass); falls back to scanning data values for addresses that
    land in the code segment when no relocations were recorded (images
    assembled by hand in tests).
    """
    relocs = getattr(image, "relocs", None)
    if relocs:
        return dict(relocs)
    return {addr: value for addr, value in image.data.items()
            if value in image}


def recover_cfg(image: ProgramImage) -> RecoveredCFG:
    """Recover the whole-program CFG of ``image``."""
    return RecoveredCFG(image)
