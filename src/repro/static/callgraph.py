"""Whole-program call graph with indirect-target resolution.

Direct edges come from ``JAL`` sites; indirect call sites (``JALR``)
are resolved through their function-pointer tables by backward constant
propagation of the table base (:func:`resolve_indirect_table`).  When
the producer chain is opaque, the site falls back to the conservative
candidate set: every relocated data word holding a procedure entry.

On top of the graph:

* procedure-level *liveness* (garbage-collection view): a procedure is
  live when reachable from the entry procedure via direct calls, or
  when its entry sits in a function-pointer table and any live
  procedure makes indirect calls;
* the static *call-depth bound* — the longest call chain, which is the
  return-address-stack depth the program can demand.  Recursion makes
  the bound infinite (``None``); the verifier turns that into a
  stack-discipline finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa import Kind
from repro.program.image import ProgramImage
from repro.static.recovery import RecoveredCFG, resolve_indirect_table


@dataclass(frozen=True)
class CallSite:
    """One call instruction: where it is, what it can reach."""

    pc: int
    caller: str
    targets: tuple[str, ...]     # callee names (several for indirect)
    indirect: bool


class StaticCallGraph:
    """Call edges over procedure names, plus liveness and depth."""

    def __init__(self, cfg: RecoveredCFG) -> None:
        self.cfg = cfg
        image = cfg.image
        entries = {p.start: p.name for p in cfg.procedures}
        fptr_candidates = tuple(
            entries[t] for t in cfg.entry_targets())

        self.sites: list[CallSite] = []
        self.edges: dict[str, set[str]] = {p.name: set()
                                           for p in cfg.procedures}
        self._makes_indirect: set[str] = set()
        for proc in cfg.procedures:
            for block_start in sorted(cfg.reachable_blocks(proc)):
                block = cfg.blocks[block_start]
                for pc in block.addresses():
                    inst = image.try_fetch(pc)
                    if inst is None:
                        continue
                    if inst.kind is Kind.CALL:
                        callee = entries.get(inst.imm)
                        targets = (callee,) if callee else ()
                        self.sites.append(CallSite(
                            pc=pc, caller=proc.name,
                            targets=tuple(t for t in targets if t),
                            indirect=False))
                        if callee:
                            self.edges[proc.name].add(callee)
                    elif inst.kind is Kind.CALL_INDIRECT:
                        resolved = resolve_indirect_table(
                            image, pc, cfg.reloc_targets)
                        if resolved is not None:
                            targets = tuple(sorted(
                                {entries[t] for t in resolved
                                 if t in entries}))
                        else:
                            targets = fptr_candidates
                        self.sites.append(CallSite(
                            pc=pc, caller=proc.name,
                            targets=targets, indirect=True))
                        self._makes_indirect.add(proc.name)
                        self.edges[proc.name].update(targets)

        self.entry_procedure = self._entry_procedure_name()
        self.live: set[str] = self._liveness()
        self.max_call_depth: Optional[int] = self._max_depth()

    # ------------------------------------------------------------------
    def _entry_procedure_name(self) -> Optional[str]:
        proc = self.cfg.procedure_of(self.cfg.image.entry)
        return proc.name if proc is not None else None

    def _liveness(self) -> set[str]:
        if self.entry_procedure is None:
            return set()
        live: set[str] = set()
        work = [self.entry_procedure]
        while work:
            name = work.pop()
            if name in live:
                continue
            live.add(name)
            work.extend(self.edges.get(name, ()))
        return live

    def _max_depth(self) -> Optional[int]:
        """Longest call chain from the entry procedure; ``None`` when
        the live graph is cyclic (recursion -> unbounded RAS demand)."""
        if self.entry_procedure is None:
            return 0
        depth: dict[str, Optional[int]] = {}
        IN_PROGRESS = -1

        def visit(name: str) -> Optional[int]:
            state = depth.get(name)
            if state == IN_PROGRESS:
                return None          # cycle
            if state is not None:
                return state
            depth[name] = IN_PROGRESS
            best = 0
            for callee in sorted(self.edges.get(name, ())):
                sub = visit(callee)
                if sub is None:
                    depth[name] = IN_PROGRESS
                    return None
                best = max(best, 1 + sub)
            depth[name] = best
            return best

        return visit(self.entry_procedure)

    # ------------------------------------------------------------------
    def callers_of(self, name: str) -> set[str]:
        return {caller for caller, callees in self.edges.items()
                if name in callees}

    def call_target_names(self) -> set[str]:
        """Every procedure some call site can reach."""
        out: set[str] = set()
        for site in self.sites:
            out.update(site.targets)
        return out

    @property
    def dead_procedures(self) -> tuple[str, ...]:
        """Never-referenced procedures (linker garbage), sorted."""
        return tuple(sorted(p.name for p in self.cfg.procedures
                            if p.name not in self.live))


def recover_call_graph(image: ProgramImage,
                       cfg: RecoveredCFG | None = None) -> StaticCallGraph:
    """Build the call graph (recovering the CFG first if needed)."""
    return StaticCallGraph(cfg or RecoveredCFG(image))
