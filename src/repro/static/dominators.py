"""Dominator trees, natural loops, and irreducibility detection.

Operates per procedure on the recovered CFG.  Dominators use the
iterative algorithm of Cooper, Harvey & Kennedy ("A Simple, Fast
Dominance Algorithm") over a reverse-postorder numbering — quadratic in
the worst case but effectively linear on the shallow CFGs the workload
generator emits.

Natural loops are the paper's loop cue made static: a *back edge* is a
CFG edge whose target dominates its source, its target is the loop
header, and the loop body is everything that can reach the back-edge
source without passing through the header.  The preconstruction engine
keys off taken backward branches at runtime (§3.1); every such branch
in generated code is the closing edge of a natural loop found here.

A cycle that is *not* a natural loop (a multiple-entry strongly
connected component) is irreducible — the verifier reports it, since
the region heuristics assume reducible loop structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.static.dataflow import FlowGraph, build_flow_graph
from repro.static.recovery import ProcedureRange, RecoveredCFG


@dataclass(frozen=True)
class NaturalLoop:
    """One natural loop: header block, body blocks, and its back edges.

    ``depth`` is the nesting depth (1 = outermost).  ``back_edges`` are
    ``(source_block, header_block)`` pairs.
    """

    header: int
    body: frozenset[int]
    back_edges: tuple[tuple[int, int], ...]
    depth: int

    @property
    def blocks(self) -> int:
        return len(self.body)


class DominatorTree:
    """Immediate dominators of one procedure's reachable blocks.

    Built on the deterministic :class:`FlowGraph` (sorted node order,
    ordered edges): the reverse-postorder worklist, and therefore the
    whole tree, is a pure function of the image — independent of
    ``dict``/``set`` insertion order and ``PYTHONHASHSEED``.
    """

    def __init__(self, cfg: RecoveredCFG, proc: ProcedureRange,
                 graph: Optional[FlowGraph] = None) -> None:
        self.proc = proc
        self.entry = proc.start
        self.graph = graph or build_flow_graph(cfg, proc)
        self._succs = self.graph.succs
        self._rpo = list(self.graph.rpo)
        self._index = self.graph.rpo_index()
        self.idom: dict[int, int] = _compute_idoms(
            self.entry, self._rpo, self._index, self._succs)

    # ------------------------------------------------------------------
    @property
    def reverse_postorder(self) -> tuple[int, ...]:
        return tuple(self._rpo)

    def successors(self, block: int) -> tuple[int, ...]:
        return self._succs.get(block, ())

    def dominates(self, a: int, b: int) -> bool:
        """Whether block ``a`` dominates block ``b``."""
        node: int | None = b
        while node is not None:
            if node == a:
                return True
            if node == self.entry:
                return False
            node = self.idom.get(node)
        return False


def _compute_idoms(entry: int, rpo: list[int], index: dict[int, int],
                   succs: dict[int, tuple[int, ...]]) -> dict[int, int]:
    preds: dict[int, list[int]] = {b: [] for b in rpo}
    for block in rpo:
        for succ in succs.get(block, ()):
            if succ in preds:
                preds[succ].append(block)

    idom: dict[int, int] = {entry: entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for block in rpo:
            if block == entry:
                continue
            new_idom: int | None = None
            for pred in preds[block]:
                if pred not in idom:
                    continue
                new_idom = (pred if new_idom is None
                            else intersect(pred, new_idom))
            if new_idom is not None and idom.get(block) != new_idom:
                idom[block] = new_idom
                changed = True
    idom.pop(entry, None)
    return idom


def find_loops(tree: DominatorTree) -> list[NaturalLoop]:
    """Natural loops of one procedure, outermost depth first.

    Loops sharing a header are merged (one loop, several back edges),
    the classic normalisation.
    """
    back_edges: dict[int, list[int]] = {}
    for block in tree.reverse_postorder:
        for succ in tree.successors(block):
            if tree.dominates(succ, block):
                back_edges.setdefault(succ, []).append(block)

    raw: list[tuple[int, frozenset[int], tuple[tuple[int, int], ...]]] = []
    for header, sources in sorted(back_edges.items()):
        body = {header}
        work = [s for s in sources if s != header]
        preds: dict[int, list[int]] = {}
        for b in tree.reverse_postorder:
            for s in tree.successors(b):
                preds.setdefault(s, []).append(b)
        while work:
            node = work.pop()
            if node in body:
                continue
            body.add(node)
            work.extend(preds.get(node, ()))
        raw.append((header, frozenset(body),
                    tuple((s, header) for s in sorted(sources))))

    loops: list[NaturalLoop] = []
    for header, body, edges in raw:
        depth = sum(1 for h2, b2, _ in raw
                    if header in b2 and h2 != header) + 1
        loops.append(NaturalLoop(header=header, body=body,
                                 back_edges=edges, depth=depth))
    loops.sort(key=lambda lo: (lo.depth, lo.header))
    return loops


def loop_depth_map(loops: list[NaturalLoop]) -> dict[int, int]:
    """Per-block loop nesting depth (0 = not in any loop)."""
    depth: dict[int, int] = {}
    for loop in loops:
        for block in loop.body:
            depth[block] = max(depth.get(block, 0), loop.depth)
    return depth


def irreducible_components(tree: DominatorTree) -> list[frozenset[int]]:
    """Multiple-entry cycles (irreducible control flow) in one procedure.

    Finds non-trivial strongly connected components after removing
    natural-loop back edges; any cycle that remains cannot be a natural
    loop, which is exactly the irreducible case.
    """
    back: set[tuple[int, int]] = set()
    for block in tree.reverse_postorder:
        for succ in tree.successors(block):
            if tree.dominates(succ, block):
                back.add((block, succ))

    nodes = list(tree.reverse_postorder)
    succs = {b: tuple(s for s in tree.successors(b)
                      if (b, s) not in back) for b in nodes}
    components = _tarjan_sccs(nodes, succs)
    out = []
    for comp in components:
        if len(comp) > 1:
            out.append(frozenset(comp))
        elif comp and comp[0] in succs.get(comp[0], ()):
            out.append(frozenset(comp))  # self-loop surviving removal
    return out


def _tarjan_sccs(nodes: list[int],
                 succs: dict[int, tuple[int, ...]]) -> list[list[int]]:
    """Iterative Tarjan strongly-connected components."""
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, i = work[-1]
            if i == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = succs.get(node, ())
            while i < len(children):
                child = children[i]
                i += 1
                if child not in index:
                    work[-1] = (node, i)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                comp = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    comp.append(member)
                    if member == node:
                        break
                sccs.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs
