"""Parallel experiment runner: specs, result cache, process pool.

* :mod:`repro.runner.spec` — :class:`ExperimentSpec` (the frozen,
  hashable currency describing one simulation point) and the
  :class:`RunResult` envelope;
* :mod:`repro.runner.cache` — :class:`ResultCache`, the
  content-addressed on-disk store keyed by
  ``(schema_version, spec digest)``;
* :mod:`repro.runner.pool` — :class:`ExperimentRunner`, grouping jobs
  by benchmark so each worker generates a dynamic stream once, plus the
  :class:`TimingReport` behind ``repro all --timing-report``;
* :mod:`repro.runner.bench` — the seeded hot-path benchmark behind
  ``repro bench`` and the ``BENCH_hotpath.json`` artifact.
"""

from repro.runner.bench import (
    TRAJECTORY_FILE,
    append_trajectory,
    bench_repro_script,
    bench_sections,
    check_bench,
    format_bench,
    read_trajectory,
    regressed_sections,
    run_bench,
    trajectory_reference,
    write_bench_repro,
    write_bench_report,
)
from repro.runner.cache import (
    CACHE_DIR_ENV,
    LAST_RUN_FILE,
    ResultCache,
    default_cache_dir,
)
from repro.runner.pool import (
    ExperimentRunner,
    StreamCache,
    TimingReport,
    execute_spec,
    run_point,
    stderr_progress,
    sweep,
)
from repro.runner.spec import (
    DEFAULT_INSTRUCTIONS,
    KINDS,
    SIMULATOR_KINDS,
    SPEC_SCHEMA_VERSION,
    ExperimentSpec,
    RunResult,
    build_frontend_config,
    build_processor_config,
    resolve_instructions,
)

__all__ = [
    "TRAJECTORY_FILE", "append_trajectory", "bench_repro_script",
    "bench_sections", "check_bench", "format_bench", "read_trajectory",
    "regressed_sections", "run_bench", "trajectory_reference",
    "write_bench_repro", "write_bench_report",
    "CACHE_DIR_ENV", "LAST_RUN_FILE", "ResultCache", "default_cache_dir",
    "ExperimentRunner", "StreamCache", "TimingReport", "execute_spec",
    "run_point", "stderr_progress", "sweep",
    "DEFAULT_INSTRUCTIONS", "KINDS", "SIMULATOR_KINDS",
    "SPEC_SCHEMA_VERSION",
    "ExperimentSpec", "RunResult", "build_frontend_config",
    "build_processor_config", "resolve_instructions",
]
