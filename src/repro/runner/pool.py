"""Parallel experiment scheduler with benchmark-grouped workers.

Execution model:

* Specs are deduplicated, checked against the optional
  :class:`~repro.runner.cache.ResultCache` (all cache I/O stays in the
  parent process — workers never touch the cache, so there are no
  write races), and the misses are grouped by
  ``(benchmark, workload_seed, instructions)``.
* Each group is one unit of work: a worker builds the benchmark's
  dynamic stream **once** and replays it across every configuration
  point in the group — the same generate-once economics the in-process
  :class:`StreamCache` has always provided, now per worker.
* With ``jobs > 1`` the groups run under a
  :class:`~concurrent.futures.ProcessPoolExecutor`; with ``jobs == 1``
  (or a single group) everything runs inline, reusing the caller's
  :class:`StreamCache` when one is supplied.
* Results are merged back **in spec order** regardless of completion
  order, so parallel output is bit-identical to the serial path.

The cumulative :class:`TimingReport` records per-point wall times,
cache hits and executed counts — ``repro all --timing-report`` writes
it out for CI artifacts.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.engine import FunctionalEngine, StreamRecord
from repro.obs.manifest import build_manifest
from repro.processor import run_processor
from repro.runner.cache import ResultCache
from repro.runner.spec import ExperimentSpec, RunResult, resolve_instructions
from repro.sim import DynamicPartitionConfig, run_frontend
from repro.workloads import build_workload

Progress = Callable[[str], None]


class StreamCache:
    """Generate-once cache of benchmark images and dynamic streams.

    Keyed by ``(benchmark, workload_seed)``; a ``workload_seed`` of
    ``None`` keeps the benchmark profile's own seed.
    """

    def __init__(self, instructions: Optional[int] = None) -> None:
        self.instructions = resolve_instructions(instructions)
        self._streams: dict[tuple[str, Optional[int]],
                            list[StreamRecord]] = {}
        self._images: dict[tuple[str, Optional[int]], Any] = {}
        self._traces: dict[tuple, list] = {}

    def image(self, benchmark: str, workload_seed: Optional[int] = None):
        key = (benchmark, workload_seed)
        if key not in self._images:
            self._images[key] = build_workload(
                benchmark, seed=workload_seed).image
        return self._images[key]

    def stream(self, benchmark: str,
               workload_seed: Optional[int] = None) -> list[StreamRecord]:
        key = (benchmark, workload_seed)
        if key not in self._streams:
            engine = FunctionalEngine(self.image(benchmark, workload_seed))
            self._streams[key] = engine.run(self.instructions)
        return self._streams[key]

    def traces(self, benchmark: str, instructions: int,
               selection, workload_seed: Optional[int] = None) -> list:
        """The stream's trace partition under ``selection``.

        Partitioning depends only on the stream prefix and the selection
        rules — not on any cache/predictor sizing — so every point of a
        sweep over one benchmark shares the same trace sequence.  The
        selector's interning makes the cached sequence mostly shared
        objects, so this is cheap to hold and makes downstream identity
        fast paths (trace-cache probes, predictor training) hit across
        the whole sweep, not just within one point.
        """
        key = (benchmark, workload_seed, instructions, selection)
        traces = self._traces.get(key)
        if traces is None:
            from repro.trace import traces_of_stream
            stream = self.stream(benchmark, workload_seed)[:instructions]
            traces = traces_of_stream(stream, selection)
            self._traces[key] = traces
        return traces


# ----------------------------------------------------------------------
# Single-point execution
# ----------------------------------------------------------------------
def _frontend_metrics(stats) -> dict[str, Any]:
    return dict(stats.summary())


def _processor_metrics(stats) -> dict[str, Any]:
    return {
        "instructions": stats.instructions,
        "traces": stats.traces,
        "cycles": stats.cycles,
        "ipc": stats.ipc,
        "trace_misses_per_ki": stats.trace_miss_rate_per_ki,
        "buffer_hits": stats.buffer_hits,
    }


def execute_spec(spec: ExperimentSpec,
                 stream_cache: Optional[StreamCache] = None) -> RunResult:
    """Run one simulation point, bypassing the result cache.

    A supplied ``stream_cache`` is reused when its budget covers the
    spec (the functional engine is sequential and deterministic, so a
    longer stream's prefix equals a shorter run); otherwise a private
    one is built at the spec's budget.
    """
    started = time.perf_counter()
    if spec.kind == "check":
        # Differential validation builds (and re-builds) its own
        # execution legs — a shared stream cache would defeat the
        # regeneration-based determinism oracle.
        from repro.check.harness import execute_check

        return RunResult(spec=spec, metrics=execute_check(spec),
                         wall_seconds=time.perf_counter() - started,
                         manifest=build_manifest(spec))
    if stream_cache is None or stream_cache.instructions < spec.instructions:
        stream_cache = StreamCache(spec.instructions)
    image = stream_cache.image(spec.benchmark, spec.workload_seed)
    stream = stream_cache.stream(spec.benchmark, spec.workload_seed)

    if spec.kind == "frontend":
        config = spec.frontend_config()
        traces = stream_cache.traces(spec.benchmark, spec.instructions,
                                     config.selection, spec.workload_seed)
        result = run_frontend(image, config, spec.instructions,
                              stream=stream, traces=traces)
        metrics = _frontend_metrics(result.stats)
    elif spec.kind == "processor":
        result = run_processor(image, spec.processor_config(),
                               spec.instructions, stream=stream)
        metrics = _processor_metrics(result.stats)
    else:  # dynamic
        result = run_frontend(image, spec.frontend_config(),
                              spec.instructions, stream=stream,
                              partition=DynamicPartitionConfig())
        events = result.partition_events or []
        metrics = {
            "trace_misses_per_ki": result.stats.trace_miss_rate_per_ki,
            "pb_trajectory": [event.pb_entries for event in events],
            "epoch_miss_rates": [event.epoch_miss_rate for event in events],
        }
    return RunResult(spec=spec, metrics=metrics,
                     wall_seconds=time.perf_counter() - started,
                     manifest=build_manifest(spec))


def run_point(spec: ExperimentSpec, *,
              stream_cache: Optional[StreamCache] = None,
              cache: Optional[ResultCache] = None) -> RunResult:
    """Run (or cache-serve) one simulation point."""
    if cache is not None:
        hit = cache.get(spec)
        if hit is not None:
            return hit
    result = execute_spec(spec, stream_cache)
    if cache is not None:
        cache.put(spec, result)
    return result


def _run_group(specs: tuple[ExperimentSpec, ...]) -> list[RunResult]:
    """Worker entry point: one benchmark group, one stream generation."""
    stream_cache = StreamCache(max(spec.instructions for spec in specs))
    return [execute_spec(spec, stream_cache) for spec in specs]


# ----------------------------------------------------------------------
# Timing report
# ----------------------------------------------------------------------
@dataclass
class TimingReport:
    """Cumulative accounting for one runner's lifetime."""

    jobs: int = 1
    requested: int = 0      # specs requested, duplicates included
    unique: int = 0         # distinct specs after dedup
    executed: int = 0       # simulations actually run
    cache_hits: int = 0     # specs served from the result cache
    wall_seconds: float = 0.0
    points: list[dict[str, Any]] = field(default_factory=list)

    def record(self, result: RunResult) -> None:
        self.points.append({"spec": result.spec.label,
                            "kind": result.spec.kind,
                            "wall_seconds": result.wall_seconds,
                            "cached": result.cached})

    def to_dict(self) -> dict[str, Any]:
        return {"jobs": self.jobs, "requested": self.requested,
                "unique": self.unique, "executed": self.executed,
                "cache_hits": self.cache_hits,
                "wall_seconds": self.wall_seconds, "points": self.points}

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), indent=2)

    def summary(self) -> str:
        return (f"{self.requested} points ({self.unique} unique): "
                f"{self.executed} executed, {self.cache_hits} cache hits, "
                f"jobs={self.jobs}, {self.wall_seconds:.2f}s")


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------
def stderr_progress(message: str) -> None:
    """Default progress sink: one line per event on stderr."""
    print(message, file=sys.stderr, flush=True)


class ExperimentRunner:
    """Schedules :class:`ExperimentSpec` batches across processes.

    One runner may be reused across several batches (``repro all`` runs
    one batch per exhibit set); its :class:`TimingReport` accumulates.
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 stream_cache: Optional[StreamCache] = None,
                 progress: Optional[Progress] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.stream_cache = stream_cache
        self.progress = progress
        self.report = TimingReport(jobs=jobs)

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[ExperimentSpec]) -> list[RunResult]:
        """Run ``specs``; results come back in spec order.

        Duplicate specs are computed once and share one result object.
        """
        started = time.perf_counter()
        unique = list(dict.fromkeys(specs))
        results: dict[ExperimentSpec, RunResult] = {}

        if self.cache is not None:
            for spec in unique:
                hit = self.cache.get(spec)
                if hit is not None:
                    results[spec] = hit
        hits = len(results)
        missing = [spec for spec in unique if spec not in results]

        groups = self._group(missing)
        if hits and self.progress:
            self.progress(f"cache: {hits} hits, {len(missing)} to run "
                          f"in {len(groups)} benchmark groups")
        if len(groups) > 1 and self.jobs > 1:
            executed = self._run_parallel(groups)
        else:
            executed = self._run_inline(groups)
        for result in executed:
            results[result.spec] = result
            if self.cache is not None:
                self.cache.put(result.spec, result)

        self.report.requested += len(specs)
        self.report.unique += len(unique)
        self.report.executed += len(executed)
        self.report.cache_hits += hits
        self.report.wall_seconds += time.perf_counter() - started
        for spec in unique:
            self.report.record(results[spec])
        return [results[spec] for spec in specs]

    # ------------------------------------------------------------------
    @staticmethod
    def _group(specs: Iterable[ExperimentSpec]
               ) -> list[tuple[ExperimentSpec, ...]]:
        """Deterministic benchmark groups, preserving spec order."""
        grouped: dict[tuple, list[ExperimentSpec]] = {}
        for spec in specs:
            key = (spec.benchmark, spec.workload_seed, spec.instructions)
            grouped.setdefault(key, []).append(spec)
        return [tuple(group) for group in grouped.values()]

    def _run_inline(self, groups: list[tuple[ExperimentSpec, ...]]
                    ) -> list[RunResult]:
        executed: list[RunResult] = []
        for index, group in enumerate(groups, start=1):
            group_started = time.perf_counter()
            budget = max(spec.instructions for spec in group)
            stream_cache = self.stream_cache
            if stream_cache is None or stream_cache.instructions < budget:
                stream_cache = StreamCache(budget)
            for spec in group:
                executed.append(execute_spec(spec, stream_cache))
            self._announce(index, len(groups), group,
                           time.perf_counter() - group_started)
        return executed

    def _run_parallel(self, groups: list[tuple[ExperimentSpec, ...]]
                      ) -> list[RunResult]:
        executed: list[RunResult] = []
        workers = min(self.jobs, len(groups))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_run_group, group): group
                       for group in groups}
            done = 0
            for future in as_completed(futures):
                group = futures[future]
                results = future.result()
                executed.extend(results)
                done += 1
                self._announce(done, len(groups), group,
                               sum(r.wall_seconds for r in results))
        return executed

    def _announce(self, done: int, total: int,
                  group: tuple[ExperimentSpec, ...],
                  seconds: float) -> None:
        if self.progress and group:
            self.progress(f"[{done}/{total}] {group[0].benchmark}: "
                          f"{len(group)} points in {seconds:.2f}s")


def sweep(specs: Sequence[ExperimentSpec], *, jobs: int = 1,
          cache: Optional[ResultCache] = None,
          stream_cache: Optional[StreamCache] = None,
          progress: Optional[Progress] = None) -> list[RunResult]:
    """One-shot convenience wrapper around :class:`ExperimentRunner`."""
    runner = ExperimentRunner(jobs=jobs, cache=cache,
                              stream_cache=stream_cache, progress=progress)
    return runner.run(list(specs))
