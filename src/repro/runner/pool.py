"""Parallel experiment scheduler with benchmark-grouped workers.

Execution model:

* Specs are deduplicated, checked against the optional
  :class:`~repro.runner.cache.ResultCache` (all cache I/O stays in the
  parent process — workers never touch the cache, so there are no
  write races), and the misses are grouped by
  ``(benchmark, workload_seed, instructions)``.
* Each group is one unit of work: a worker builds the benchmark's
  dynamic stream **once** and replays it across every configuration
  point in the group — the same generate-once economics the in-process
  :class:`StreamCache` has always provided, now per worker.
* With ``jobs > 1`` the groups run under a
  :class:`~concurrent.futures.ProcessPoolExecutor`; with ``jobs == 1``
  (or a single group) everything runs inline, reusing the caller's
  :class:`StreamCache` when one is supplied.
* Results are merged back **in spec order** regardless of completion
  order, so parallel output is bit-identical to the serial path.

The cumulative :class:`TimingReport` records per-point wall times,
cache hits and executed counts — ``repro all --timing-report`` writes
it out for CI artifacts.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import nullcontext
from dataclasses import replace
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.engine import FunctionalEngine, StreamRecord
from repro.obs.manifest import build_manifest
from repro.processor import run_processor
from repro.runner.cache import ResultCache
from repro.runner.spec import ExperimentSpec, RunResult, resolve_instructions
from repro.sim import DynamicPartitionConfig, run_frontend
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.session import activate_worker, current_telemetry
from repro.workloads import build_workload

Progress = Callable[[str], None]


class StreamCache:
    """Generate-once cache of benchmark images and dynamic streams.

    Keyed by ``(benchmark, workload_seed)``; a ``workload_seed`` of
    ``None`` keeps the benchmark profile's own seed.
    """

    def __init__(self, instructions: Optional[int] = None) -> None:
        self.instructions = resolve_instructions(instructions)
        self.tele = current_telemetry()
        self._streams: dict[tuple[str, Optional[int]],
                            list[StreamRecord]] = {}
        self._images: dict[tuple[str, Optional[int]], Any] = {}
        self._traces: dict[tuple, list] = {}
        self._plans: dict[tuple, Any] = {}

    def image(self, benchmark: str, workload_seed: Optional[int] = None):
        key = (benchmark, workload_seed)
        if key not in self._images:
            with (self.tele.span("workload.image", benchmark=benchmark)
                  if self.tele else nullcontext()):
                self._images[key] = build_workload(
                    benchmark, seed=workload_seed).image
        return self._images[key]

    def stream(self, benchmark: str,
               workload_seed: Optional[int] = None) -> list[StreamRecord]:
        key = (benchmark, workload_seed)
        if key not in self._streams:
            image = self.image(benchmark, workload_seed)
            with (self.tele.span("workload.stream", benchmark=benchmark,
                                 instructions=self.instructions)
                  if self.tele else nullcontext()):
                engine = FunctionalEngine(image)
                self._streams[key] = engine.run(self.instructions)
        return self._streams[key]

    def traces(self, benchmark: str, instructions: int,
               selection, workload_seed: Optional[int] = None) -> list:
        """The stream's trace partition under ``selection``.

        Partitioning depends only on the stream prefix and the selection
        rules — not on any cache/predictor sizing — so every point of a
        sweep over one benchmark shares the same trace sequence.  The
        selector's interning makes the cached sequence mostly shared
        objects, so this is cheap to hold and makes downstream identity
        fast paths (trace-cache probes, predictor training) hit across
        the whole sweep, not just within one point.
        """
        key = (benchmark, workload_seed, instructions, selection)
        traces = self._traces.get(key)
        if traces is None:
            from repro.trace import traces_of_stream
            stream = self.stream(benchmark, workload_seed)[:instructions]
            traces = traces_of_stream(stream, selection)
            self._traces[key] = traces
        return traces

    def plan(self, benchmark: str, instructions: int, config,
             workload_seed: Optional[int] = None):
        """The partition's :class:`~repro.vector.BatchPlan` for
        ``config``'s point-independent knobs.

        Keyed by :func:`repro.vector.plan_key` — every sweep point
        differing only in cache sizing / mechanism / penalties shares
        one plan, which is the whole economy of the vectorized kernel.
        """
        from repro.vector import build_plan, plan_key

        key = (benchmark, workload_seed, instructions, plan_key(config))
        plan = self._plans.get(key)
        if plan is None:
            image = self.image(benchmark, workload_seed)
            stream = self.stream(benchmark, workload_seed)[:instructions]
            traces = self.traces(benchmark, instructions,
                                 config.selection, workload_seed)
            with (self.tele.span("workload.plan", benchmark=benchmark,
                                 instructions=instructions)
                  if self.tele else nullcontext()):
                plan = build_plan(
                    image, stream, traces,
                    selection=config.selection,
                    predictor=config.predictor,
                    bimodal_entries=config.bimodal_entries,
                    train_bimodal=config.train_bimodal_on_all_branches,
                    line_bytes=config.icache.line_bytes)
            self._plans[key] = plan
        return plan


# ----------------------------------------------------------------------
# Single-point execution
# ----------------------------------------------------------------------
def _frontend_metrics(stats) -> dict[str, Any]:
    return dict(stats.summary())


def _processor_metrics(stats) -> dict[str, Any]:
    return {
        "instructions": stats.instructions,
        "traces": stats.traces,
        "cycles": stats.cycles,
        "ipc": stats.ipc,
        "trace_misses_per_ki": stats.trace_miss_rate_per_ki,
        "buffer_hits": stats.buffer_hits,
    }


def execute_spec(spec: ExperimentSpec,
                 stream_cache: Optional[StreamCache] = None) -> RunResult:
    """Run one simulation point, bypassing the result cache.

    A supplied ``stream_cache`` is reused when its budget covers the
    spec (the functional engine is sequential and deterministic, so a
    longer stream's prefix equals a shorter run); otherwise a private
    one is built at the spec's budget.
    """
    tele = current_telemetry()
    if tele is None:
        return _execute_spec(spec, stream_cache)
    with tele.span("runner.point", label=spec.label,
                   kind=spec.kind) as record:
        result = _execute_spec(spec, stream_cache)
        record["attrs"]["wall_seconds"] = round(result.wall_seconds, 6)
        return result


def _execute_spec(spec: ExperimentSpec,
                  stream_cache: Optional[StreamCache] = None) -> RunResult:
    started = time.perf_counter()
    if spec.kind == "check":
        # Differential validation builds (and re-builds) its own
        # execution legs — a shared stream cache would defeat the
        # regeneration-based determinism oracle.
        from repro.check.harness import execute_check

        return RunResult(spec=spec, metrics=execute_check(spec),
                         wall_seconds=time.perf_counter() - started,
                         manifest=build_manifest(spec))
    if stream_cache is None or stream_cache.instructions < spec.instructions:
        stream_cache = StreamCache(spec.instructions)
    image = stream_cache.image(spec.benchmark, spec.workload_seed)
    stream = stream_cache.stream(spec.benchmark, spec.workload_seed)

    if spec.kind == "frontend":
        config = spec.frontend_config()
        if spec.simulator == "vectorized":
            from repro.vector import run_frontend_batch

            plan = stream_cache.plan(spec.benchmark, spec.instructions,
                                     config, spec.workload_seed)
            result = run_frontend_batch(image, [config], plan)[0]
        else:
            traces = stream_cache.traces(spec.benchmark, spec.instructions,
                                         config.selection,
                                         spec.workload_seed)
            result = run_frontend(image, config, spec.instructions,
                                  stream=stream, traces=traces)
        metrics = _frontend_metrics(result.stats)
    elif spec.kind == "processor":
        result = run_processor(image, spec.processor_config(),
                               spec.instructions, stream=stream)
        metrics = _processor_metrics(result.stats)
    else:  # dynamic
        result = run_frontend(image, spec.frontend_config(),
                              spec.instructions, stream=stream,
                              partition=DynamicPartitionConfig())
        events = result.partition_events or []
        metrics = {
            "trace_misses_per_ki": result.stats.trace_miss_rate_per_ki,
            "pb_trajectory": [event.pb_entries for event in events],
            "epoch_miss_rates": [event.epoch_miss_rate for event in events],
        }
    return RunResult(spec=spec, metrics=metrics,
                     wall_seconds=time.perf_counter() - started,
                     manifest=build_manifest(spec))


def run_point(spec: ExperimentSpec, *,
              stream_cache: Optional[StreamCache] = None,
              cache: Optional[ResultCache] = None) -> RunResult:
    """Run (or cache-serve) one simulation point."""
    if cache is not None:
        hit = cache.get(spec)
        if hit is not None:
            return hit
    result = execute_spec(spec, stream_cache)
    if cache is not None:
        cache.put(spec, result)
    return result


def _execute_point(spec: ExperimentSpec, stream_cache: StreamCache,
                   profile_dir: Optional[str] = None) -> RunResult:
    """One point, optionally under a per-point ``cProfile`` capture.

    The ``.pstats`` file is keyed by the spec's digest prefix and a
    top-N hotspot summary lands in the result's manifest — provenance,
    so it never affects result identity or cache hits.
    """
    if profile_dir is None:
        return execute_spec(spec, stream_cache)
    from repro.telemetry.profile import profile_call

    digest = spec.digest()[:16]
    pstats_path = Path(profile_dir) / f"{digest}.pstats"
    result, hotspots, written = profile_call(
        lambda: execute_spec(spec, stream_cache), pstats_path=pstats_path)
    if not hotspots:     # nested profiler: ran unprofiled
        return result
    manifest = dict(result.manifest or {})
    manifest["profile"] = {"pstats": str(written), "hotspots": hotspots}
    return replace(result, manifest=manifest)


def _batchable(spec: ExperimentSpec) -> bool:
    """May this spec join a group-level vectorized batch?"""
    return spec.kind == "frontend" and spec.simulator == "vectorized"


def _execute_batch(specs: Sequence[ExperimentSpec],
                   stream_cache: StreamCache) -> list[RunResult]:
    """Run vectorized frontend specs of one benchmark group together.

    Sub-batches by plan key (points differing in selection/predictor
    knobs cannot share a plan), executes each sub-batch in one
    :func:`~repro.vector.run_frontend_batch` pass, and fans the batch
    out to per-spec :class:`RunResult` envelopes — identical metrics
    and manifests to per-point execution, with the batch wall time
    attributed evenly.
    """
    from repro.vector import plan_key, run_frontend_batch

    tele = current_telemetry()
    configs = [spec.frontend_config() for spec in specs]
    buckets: dict[tuple, list[int]] = {}
    for index, config in enumerate(configs):
        buckets.setdefault(plan_key(config), []).append(index)
    results: list[Optional[RunResult]] = [None] * len(specs)
    for indices in buckets.values():
        spec0 = specs[indices[0]]
        started = time.perf_counter()
        image = stream_cache.image(spec0.benchmark, spec0.workload_seed)
        plan = stream_cache.plan(spec0.benchmark, spec0.instructions,
                                 configs[indices[0]], spec0.workload_seed)
        with (tele.span("runner.vector_batch", benchmark=spec0.benchmark,
                        points=len(indices)) if tele else nullcontext()):
            outcomes = run_frontend_batch(
                image, [configs[i] for i in indices], plan)
        share = (time.perf_counter() - started) / len(indices)
        for i, outcome in zip(indices, outcomes):
            results[i] = RunResult(spec=specs[i],
                                   metrics=_frontend_metrics(outcome.stats),
                                   wall_seconds=share,
                                   manifest=build_manifest(specs[i]))
    return results  # type: ignore[return-value]  # every slot filled


def _execute_group(specs: Sequence[ExperimentSpec],
                   stream_cache: StreamCache,
                   profile_dir: Optional[str] = None) -> list[RunResult]:
    """Execute one benchmark group, batching where the kernel allows.

    Vectorized frontend points run as one batched pass; everything else
    (scalar points, other kinds, and any run under per-point profiling,
    which needs one ``cProfile`` capture per spec) runs point-by-point.
    Results come back in ``specs`` order either way.
    """
    if profile_dir is not None:
        return [_execute_point(spec, stream_cache, profile_dir)
                for spec in specs]
    batch_indices = [i for i, spec in enumerate(specs) if _batchable(spec)]
    if len(batch_indices) < 2:
        return [_execute_point(spec, stream_cache, None) for spec in specs]
    results: list[Optional[RunResult]] = [None] * len(specs)
    batched = _execute_batch([specs[i] for i in batch_indices], stream_cache)
    for i, result in zip(batch_indices, batched):
        results[i] = result
    for i, spec in enumerate(specs):
        if results[i] is None:
            results[i] = _execute_point(spec, stream_cache, None)
    return results  # type: ignore[return-value]  # every slot filled


def _run_group(specs: tuple[ExperimentSpec, ...],
               profile_dir: Optional[str] = None) -> list[RunResult]:
    """Worker entry point: one benchmark group, one stream generation."""
    stream_cache = StreamCache(max(spec.instructions for spec in specs))
    return _execute_group(specs, stream_cache, profile_dir)


def _run_group_traced(specs: tuple[ExperimentSpec, ...],
                      context: Optional[Mapping[str, Any]],
                      profile_dir: Optional[str] = None
                      ) -> tuple[list[RunResult],
                                 Optional[dict[str, Any]]]:
    """Worker entry point with telemetry and/or profiling.

    ``context`` is the parent's span-context handoff; a fresh worker
    session is activated (replacing anything fork-inherited) so the
    harvest shipped back contains only this group's spans/metrics.
    With ``context=None`` (profiling without telemetry) no session is
    created and the harvest comes back ``None``.
    """
    if context is None:
        return _run_group(specs, profile_dir), None
    tele = activate_worker(context)
    with tele.span("runner.group", benchmark=specs[0].benchmark,
                   points=len(specs)):
        results = _run_group(specs, profile_dir)
    return results, tele.harvest()


# ----------------------------------------------------------------------
# Timing report
# ----------------------------------------------------------------------
class TimingReport:
    """Cumulative accounting for one runner's lifetime.

    The tallies are backed by a private
    :class:`~repro.telemetry.registry.MetricsRegistry` (counters plus
    a fixed-bucket histogram of per-point wall times), but the public
    shape — ``requested`` / ``unique`` / ``executed`` / ``cache_hits``
    / ``wall_seconds`` attributes, ``points`` list, ``to_dict`` /
    ``to_json`` / ``summary`` — is unchanged from the dataclass era.
    The registry is private, not the process session's: ``repro
    bench`` builds one runner per section and each section's report
    must stand alone.
    """

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = jobs
        self.points: list[dict[str, Any]] = []
        self.registry = MetricsRegistry()
        self._requested = self.registry.counter(
            "repro_runner_requested",
            help="Specs requested, duplicates included")
        self._unique = self.registry.counter(
            "repro_runner_unique", help="Distinct specs after dedup")
        self._executed = self.registry.counter(
            "repro_runner_executed", help="Simulations actually run")
        self._cache_hits = self.registry.counter(
            "repro_runner_cache_hits",
            help="Specs served from the result cache")
        self._wall = self.registry.counter(
            "repro_runner_wall_seconds",
            help="Scheduler wall-clock seconds")
        self._point_seconds = self.registry.histogram(
            "repro_runner_point_seconds",
            help="Per-point simulation wall seconds")

    @property
    def requested(self) -> int:
        return int(self._requested.value)

    @property
    def unique(self) -> int:
        return int(self._unique.value)

    @property
    def executed(self) -> int:
        return int(self._executed.value)

    @property
    def cache_hits(self) -> int:
        return int(self._cache_hits.value)

    @property
    def wall_seconds(self) -> float:
        return float(self._wall.value)

    def add(self, *, requested: int = 0, unique: int = 0,
            executed: int = 0, cache_hits: int = 0,
            wall_seconds: float = 0.0) -> None:
        """One scheduler pass's tallies (the runner calls this)."""
        self._requested.add(requested)
        self._unique.add(unique)
        self._executed.add(executed)
        self._cache_hits.add(cache_hits)
        self._wall.add(wall_seconds)

    def record(self, result: RunResult) -> None:
        self._point_seconds.observe(result.wall_seconds)
        self.points.append({"spec": result.spec.label,
                            "kind": result.spec.kind,
                            "wall_seconds": result.wall_seconds,
                            "cached": result.cached})

    def to_dict(self) -> dict[str, Any]:
        return {"jobs": self.jobs, "requested": self.requested,
                "unique": self.unique, "executed": self.executed,
                "cache_hits": self.cache_hits,
                "wall_seconds": self.wall_seconds, "points": self.points}

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), indent=2)

    def summary(self) -> str:
        return (f"{self.requested} points ({self.unique} unique): "
                f"{self.executed} executed, {self.cache_hits} cache hits, "
                f"jobs={self.jobs}, {self.wall_seconds:.2f}s")


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------
def stderr_progress(message: str) -> None:
    """Default progress sink: one line per event on stderr."""
    print(message, file=sys.stderr, flush=True)


class ExperimentRunner:
    """Schedules :class:`ExperimentSpec` batches across processes.

    One runner may be reused across several batches (``repro all`` runs
    one batch per exhibit set); its :class:`TimingReport` accumulates.
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 stream_cache: Optional[StreamCache] = None,
                 progress: Optional[Progress] = None,
                 profile_dir: Optional[str | Path] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.stream_cache = stream_cache
        self.progress = progress
        self.profile_dir = str(profile_dir) if profile_dir else None
        self.tele = current_telemetry()
        self.report = TimingReport(jobs=jobs)

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[ExperimentSpec]) -> list[RunResult]:
        """Run ``specs``; results come back in spec order.

        Duplicate specs are computed once and share one result object.
        """
        if self.tele is None:
            return self._run(specs)
        with self.tele.span("runner.batch", specs=len(specs),
                            jobs=self.jobs):
            return self._run(specs)

    def _run(self, specs: Sequence[ExperimentSpec]) -> list[RunResult]:
        started = time.perf_counter()
        unique = list(dict.fromkeys(specs))
        results: dict[ExperimentSpec, RunResult] = {}

        if self.cache is not None:
            for spec in unique:
                hit = self.cache.get(spec)
                if hit is not None:
                    results[spec] = hit
        hits = len(results)
        missing = [spec for spec in unique if spec not in results]

        groups = self._group(missing)
        if hits and self.progress:
            self.progress(f"cache: {hits} hits, {len(missing)} to run "
                          f"in {len(groups)} benchmark groups")
        if len(groups) > 1 and self.jobs > 1:
            executed = self._run_parallel(groups)
        else:
            executed = self._run_inline(groups)
        for result in executed:
            results[result.spec] = result
            if self.cache is not None:
                self.cache.put(result.spec, result)

        wall = time.perf_counter() - started
        self.report.add(requested=len(specs), unique=len(unique),
                        executed=len(executed), cache_hits=hits,
                        wall_seconds=wall)
        for spec in unique:
            self.report.record(results[spec])
        if self.tele:
            # Mirror *this pass's deltas* into the process session (the
            # report itself is cumulative across batches) so
            # ``--telemetry-json`` sees scheduler totals without
            # reaching into per-runner reports.
            pass_report = TimingReport(jobs=self.jobs)
            pass_report.add(requested=len(specs), unique=len(unique),
                            executed=len(executed), cache_hits=hits,
                            wall_seconds=wall)
            for spec in unique:
                pass_report.record(results[spec])
            self.tele.registry.merge(pass_report.registry.to_dict())
        return [results[spec] for spec in specs]

    # ------------------------------------------------------------------
    @staticmethod
    def _group(specs: Iterable[ExperimentSpec]
               ) -> list[tuple[ExperimentSpec, ...]]:
        """Deterministic benchmark groups, preserving spec order."""
        grouped: dict[tuple, list[ExperimentSpec]] = {}
        for spec in specs:
            key = (spec.benchmark, spec.workload_seed, spec.instructions)
            grouped.setdefault(key, []).append(spec)
        return [tuple(group) for group in grouped.values()]

    def _run_inline(self, groups: list[tuple[ExperimentSpec, ...]]
                    ) -> list[RunResult]:
        executed: list[RunResult] = []
        for index, group in enumerate(groups, start=1):
            group_started = time.perf_counter()
            budget = max(spec.instructions for spec in group)
            stream_cache = self.stream_cache
            if stream_cache is None or stream_cache.instructions < budget:
                stream_cache = StreamCache(budget)
            with (self.tele.span("runner.group",
                                 benchmark=group[0].benchmark,
                                 points=len(group))
                  if self.tele else nullcontext()):
                executed.extend(_execute_group(group, stream_cache,
                                               self.profile_dir))
            self._announce(index, len(groups), group,
                           time.perf_counter() - group_started)
        return executed

    def _run_parallel(self, groups: list[tuple[ExperimentSpec, ...]]
                      ) -> list[RunResult]:
        executed: list[RunResult] = []
        workers = min(self.jobs, len(groups))
        traced = self.tele is not None or self.profile_dir is not None
        context = self.tele.handoff() if self.tele else None
        with ProcessPoolExecutor(max_workers=workers) as pool:
            if traced:
                futures = {pool.submit(_run_group_traced, group, context,
                                       self.profile_dir): group
                           for group in groups}
            else:
                futures = {pool.submit(_run_group, group): group
                           for group in groups}
            done = 0
            for future in as_completed(futures):
                group = futures[future]
                outcome = future.result()
                if traced:
                    results, harvest = outcome
                    if self.tele:
                        self.tele.absorb(harvest)
                else:
                    results = outcome
                executed.extend(results)
                done += 1
                self._announce(done, len(groups), group,
                               sum(r.wall_seconds for r in results))
        return executed

    def _announce(self, done: int, total: int,
                  group: tuple[ExperimentSpec, ...],
                  seconds: float) -> None:
        if self.progress and group:
            self.progress(f"[{done}/{total}] {group[0].benchmark}: "
                          f"{len(group)} points in {seconds:.2f}s")


def sweep(specs: Sequence[ExperimentSpec], *, jobs: int = 1,
          cache: Optional[ResultCache] = None,
          stream_cache: Optional[StreamCache] = None,
          progress: Optional[Progress] = None) -> list[RunResult]:
    """One-shot convenience wrapper around :class:`ExperimentRunner`."""
    runner = ExperimentRunner(jobs=jobs, cache=cache,
                              stream_cache=stream_cache, progress=progress)
    return runner.run(list(specs))
