"""Seeded hot-path benchmark trajectory (``repro bench``).

Times cold runs of the paper's heaviest exhibit workloads — the
Figure-5 frontend sweep and the Tables 1-3 traffic points — through the
ordinary :class:`~repro.runner.pool.ExperimentRunner`, with the result
cache disabled and a fresh stream cache, so the numbers measure the
simulator itself rather than the cache layer.

The module pins the pre-overhaul wall-clock baselines (measured on the
commit before the hot-path PR, same machine class, ``jobs=1``, cold)
so every subsequent run reports its speedup against a fixed origin
rather than against whatever happened to run last.  Budgets are pinned
too: the baselines are only comparable at the instruction counts they
were recorded at, so ``repro bench`` ignores ``--instructions``.

``write_bench_report`` serialises the measurement — baseline, current
and speedup per section, plus the full scheduler timing report — to
``BENCH_hotpath.json``, the artifact CI uploads.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Any, Callable, Optional

from repro.runner.pool import ExperimentRunner
from repro.runner.spec import ExperimentSpec
from repro.telemetry.session import current_telemetry, utc_timestamp

#: Commit the baselines were measured on (the parent of the hot-path
#: overhaul PR), recorded so a report is interpretable on its own.
BASELINE_COMMIT = "61d73a5"

#: Committed append-only history of bench runs — what ``repro
#: report``'s trajectory panel and ``bench --check`` (against a
#: ``.jsonl``) read.
TRAJECTORY_FILE = "BENCH_trajectory.jsonl"

#: Pinned budgets — changing these invalidates the baselines.
FULL_INSTRUCTIONS = 60_000
QUICK_INSTRUCTIONS = 20_000
QUICK_BENCHMARKS = ("gcc", "go")

#: Cold single-job wall-clock seconds on :data:`BASELINE_COMMIT`.
BASELINE_SECONDS: dict[tuple[str, str], float] = {
    ("full", "figure5"): 104.90,   # 160 specs, all benchmarks @60k
    ("full", "tables"): 2.95,      # 4 specs @60k
    ("quick", "figure5"): 9.67,    # 40 specs, gcc+go @20k
}


def bench_sections(quick: bool = False
                   ) -> list[tuple[str, list[ExperimentSpec]]]:
    """The (name, specs) sections one bench mode measures."""
    from repro.analysis.sweeps import figure5_specs
    from repro.analysis.tables import TABLE_BENCHMARKS, tables_specs
    from repro.workloads import SPEC95_NAMES

    if quick:
        specs = [spec for benchmark in QUICK_BENCHMARKS
                 for spec in figure5_specs(benchmark, QUICK_INSTRUCTIONS)]
        return [("figure5", specs)]
    return [
        ("figure5", [spec for benchmark in SPEC95_NAMES
                     for spec in figure5_specs(benchmark,
                                               FULL_INSTRUCTIONS)]),
        ("tables", tables_specs(FULL_INSTRUCTIONS, TABLE_BENCHMARKS)),
    ]


def run_bench(quick: bool = False, jobs: int = 1,
              progress: Optional[Callable[[str], None]] = None,
              profile_dir: Optional[str | Path] = None,
              simulator: str = "scalar") -> dict[str, Any]:
    """Run one bench mode cold and return the report payload.

    Each section gets its own runner (no result cache, no shared
    stream cache) so section times are independent cold measurements.
    Speedups are only meaningful at ``jobs=1`` — the baselines are
    single-job — but parallel runs still record their wall time.
    ``profile_dir`` forwards to the runner's per-point ``cProfile``
    capture (expect skewed wall times under it).  ``simulator``
    selects the frontend kernel (:data:`~repro.runner.spec.SIMULATOR_KINDS`);
    the payload records it so ``bench --check`` never compares wall
    times across kernels.
    """
    from repro.runner.spec import SIMULATOR_KINDS

    if simulator not in SIMULATOR_KINDS:
        raise ValueError(f"unknown simulator {simulator!r}; "
                         f"choose from {SIMULATOR_KINDS}")
    tele = current_telemetry()
    mode = "quick" if quick else "full"
    sections: dict[str, Any] = {}
    reports = []
    for name, specs in bench_sections(quick):
        if simulator != "scalar":
            specs = [spec.replace(simulator=simulator) for spec in specs]
        runner = ExperimentRunner(jobs=jobs, cache=None, progress=progress,
                                  profile_dir=profile_dir)
        started = time.perf_counter()
        if tele:
            with tele.span("bench.section", section=name,
                           specs=len(specs)):
                runner.run(specs)
        else:
            runner.run(specs)
        elapsed = time.perf_counter() - started
        baseline = BASELINE_SECONDS[(mode, name)]
        sections[name] = {
            "specs": len(specs),
            "baseline_seconds": baseline,
            "current_seconds": round(elapsed, 2),
            "speedup": round(baseline / elapsed, 2) if elapsed else None,
        }
        reports.append(runner.report.to_dict())

    total_baseline = sum(s["baseline_seconds"] for s in sections.values())
    total_current = sum(s["current_seconds"] for s in sections.values())
    return {
        "schema": 1,
        "mode": mode,
        "jobs": jobs,
        "simulator": simulator,
        "baseline_commit": BASELINE_COMMIT,
        "instructions": (QUICK_INSTRUCTIONS if quick
                         else FULL_INSTRUCTIONS),
        "sections": sections,
        "total": {
            "baseline_seconds": round(total_baseline, 2),
            "current_seconds": round(total_current, 2),
            "speedup": (round(total_baseline / total_current, 2)
                        if total_current else None),
        },
        "timing_reports": reports,
    }


def write_bench_report(payload: dict[str, Any],
                       path: str | Path = "BENCH_hotpath.json") -> Path:
    """Write ``payload`` as deterministic JSON; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


# ----------------------------------------------------------------------
# Bench trajectory (append-only history)
# ----------------------------------------------------------------------
def _git_commit() -> str:
    """The working tree's short commit, or ``"unknown"`` outside git."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    commit = output.stdout.strip()
    return commit or "unknown"


def trajectory_row(payload: dict[str, Any],
                   commit: Optional[str] = None) -> dict[str, Any]:
    """One history line for a bench payload (commit, mode, sections)."""
    return {
        "schema": 1,
        "recorded_at": utc_timestamp(),
        "commit": commit if commit is not None else _git_commit(),
        "mode": payload.get("mode"),
        "jobs": payload.get("jobs"),
        # Payloads from before the simulator field existed are scalar
        # by construction.
        "simulator": payload.get("simulator", "scalar"),
        "sections": {
            name: {"specs": section.get("specs"),
                   "current_seconds": section.get("current_seconds")}
            for name, section in payload.get("sections", {}).items()
        },
        "total_seconds": payload.get("total", {}).get("current_seconds"),
    }


def append_trajectory(payload: dict[str, Any],
                      path: str | Path = TRAJECTORY_FILE,
                      commit: Optional[str] = None) -> Path:
    """Append one run to the committed history; returns the path."""
    target = Path(path)
    row = trajectory_row(payload, commit=commit)
    with target.open("a") as handle:
        handle.write(json.dumps(row, sort_keys=True) + "\n")
    return target


def read_trajectory(path: str | Path = TRAJECTORY_FILE
                    ) -> list[dict[str, Any]]:
    """All history rows, oldest first; missing file reads as empty.

    Damaged lines (a truncated append from a killed run) are skipped
    rather than poisoning the whole history.
    """
    target = Path(path)
    try:
        text = target.read_text()
    except OSError:
        return []
    rows: list[dict[str, Any]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except ValueError:
            continue
        if isinstance(row, dict):
            rows.append(row)
    return rows


def trajectory_reference(path: str | Path, mode: str
                         ) -> Optional[dict[str, Any]]:
    """The newest history row for ``mode``, as a ``check_bench``
    reference payload — ``bench --check history.jsonl`` compares the
    fresh run against the last recorded run of the same mode."""
    for row in reversed(read_trajectory(path)):
        if row.get("mode") != mode:
            continue
        return {"mode": row.get("mode"),
                "simulator": row.get("simulator", "scalar"),
                "sections": row.get("sections", {})}
    return None


def check_bench(payload: dict[str, Any], reference: dict[str, Any],
                tolerance: float = 0.5) -> list[str]:
    """Compare a fresh bench payload against a pinned reference report.

    The observability PR's guard-rail: with instrumentation off (the
    default), each section's wall time must stay within ``tolerance``
    (fractional, e.g. ``0.5`` = +50%) of the reference's recorded
    ``current_seconds``.  Returns a list of violations (empty = pass).
    Sections missing from either side are reported, not ignored.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    problems: list[str] = []
    if payload.get("mode") != reference.get("mode"):
        problems.append(f"mode mismatch: ran {payload.get('mode')!r}, "
                        f"reference is {reference.get('mode')!r}")
        return problems
    # Wall times measure a specific kernel: comparing a vectorized run
    # against a scalar reference (or vice versa) would score the kernel
    # swap as a speedup/regression.  Rows and reports from before the
    # field existed are scalar by construction.
    ran = payload.get("simulator", "scalar")
    expected = reference.get("simulator", "scalar")
    if ran != expected:
        problems.append(f"simulator mismatch: ran {ran!r}, reference is "
                        f"{expected!r} — cross-kernel wall times are not "
                        f"comparable (re-record the reference with "
                        f"--simulator {ran})")
        return problems
    # A hand-edited or truncated report may lack "sections" entirely;
    # that is a reportable problem, not a KeyError.
    sections = payload.get("sections")
    if not isinstance(sections, dict):
        problems.append("payload has no 'sections' mapping")
        return problems
    ref_sections = reference.get("sections", {})
    for name, ref in ref_sections.items():
        section = sections.get(name)
        if section is None:
            problems.append(f"section {name!r} missing from this run")
            continue
        limit = ref["current_seconds"] * (1.0 + tolerance)
        if section["current_seconds"] > limit:
            problems.append(
                f"{name}: {section['current_seconds']:.2f}s exceeds "
                f"{ref['current_seconds']:.2f}s "
                f"+{tolerance:.0%} ({limit:.2f}s)")
    for name in sections:
        if name not in ref_sections:
            problems.append(f"section {name!r} has no reference baseline")
    return problems


def regressed_sections(payload: dict[str, Any], reference: dict[str, Any],
                       tolerance: float = 0.5) -> dict[str, float]:
    """Sections whose wall time exceeds the reference limit.

    The minimizable subset of :func:`check_bench`'s findings: mode and
    section-presence mismatches cannot be reproduced by re-timing, so
    only genuine slowdowns come back — ``{section: limit_seconds}``.
    """
    regressed: dict[str, float] = {}
    sections = payload.get("sections")
    if payload.get("mode") != reference.get("mode") \
            or (payload.get("simulator", "scalar")
                != reference.get("simulator", "scalar")) \
            or not isinstance(sections, dict):
        return regressed
    for name, ref in reference.get("sections", {}).items():
        section = sections.get(name)
        if section is None:
            continue
        limit = ref["current_seconds"] * (1.0 + tolerance)
        if section["current_seconds"] > limit:
            regressed[name] = round(limit, 2)
    return regressed


def bench_repro_script(payload: dict[str, Any], reference: dict[str, Any],
                       tolerance: float = 0.5) -> str:
    """A self-contained repro script for a failed ``bench --check``.

    The regression-triage counterpart of the fuzz minimizer's repro
    scripts: instead of re-running the whole bench matrix, the script
    re-times *only the regressed sections* (the minimized failing
    subset) against the reference limits embedded at generation time,
    and exits non-zero while any section still exceeds its limit.
    """
    regressed = regressed_sections(payload, reference, tolerance)
    if not regressed:
        raise ValueError("no regressed sections to reproduce")
    mode = payload.get("mode", "quick")
    simulator = payload.get("simulator", "scalar")
    limits = "".join(
        f"    {name!r}: {limit},\n" for name, limit in sorted(regressed.items()))
    observed = "".join(
        f"#   {name}: {payload['sections'][name]['current_seconds']:.2f}s "
        f"(limit {limit:.2f}s)\n"
        for name, limit in sorted(regressed.items()))
    return (
        "#!/usr/bin/env python\n"
        '"""Minimized repro for a `repro bench --check` regression.\n'
        "\n"
        "Run with the repository on PYTHONPATH:\n"
        "    PYTHONPATH=src python bench_regression_repro.py\n"
        '"""\n'
        "# Regressed sections at generation time:\n"
        f"{observed}"
        "import time\n"
        "\n"
        "from repro.runner.bench import bench_sections\n"
        "from repro.runner.pool import ExperimentRunner\n"
        "\n"
        f"MODE = {mode!r}\n"
        f"SIMULATOR = {simulator!r}\n"
        "LIMIT_SECONDS = {\n"
        f"{limits}"
        "}\n"
        "\n"
        "failed = False\n"
        "for name, specs in bench_sections(quick=MODE == 'quick'):\n"
        "    if name not in LIMIT_SECONDS:\n"
        "        continue\n"
        "    specs = [s.replace(simulator=SIMULATOR) for s in specs]\n"
        "    runner = ExperimentRunner(jobs=1, cache=None)\n"
        "    started = time.perf_counter()\n"
        "    runner.run(specs)\n"
        "    elapsed = time.perf_counter() - started\n"
        "    limit = LIMIT_SECONDS[name]\n"
        "    verdict = 'REGRESSED' if elapsed > limit else 'ok'\n"
        "    print(f'{name}: {elapsed:.2f}s (limit {limit:.2f}s) {verdict}')\n"
        "    failed = failed or elapsed > limit\n"
        "raise SystemExit(1 if failed else 0)\n"
    )


def write_bench_repro(payload: dict[str, Any], reference: dict[str, Any],
                      tolerance: float = 0.5,
                      path: str | Path = "bench_regression_repro.py"
                      ) -> Path:
    """Write :func:`bench_repro_script`'s output; returns the path."""
    target = Path(path)
    target.write_text(bench_repro_script(payload, reference, tolerance))
    return target


def _format_speedup(speedup: Optional[float]) -> str:
    """``1.87x`` — or ``n/a`` for a section too fast to time (a
    near-zero elapsed leaves ``speedup`` as ``None``)."""
    return f"{speedup:.2f}x" if speedup is not None else "n/a"


def format_bench(payload: dict[str, Any]) -> str:
    """Human-readable one-block summary of a bench payload."""
    lines = [f"repro bench ({payload['mode']}, jobs={payload['jobs']}, "
             f"baseline {payload['baseline_commit']})"]
    for name, section in payload["sections"].items():
        lines.append(
            f"  {name:8s} {section['specs']:4d} specs: "
            f"{section['current_seconds']:8.2f}s "
            f"(baseline {section['baseline_seconds']:.2f}s, "
            f"{_format_speedup(section['speedup'])})")
    total = payload["total"]
    lines.append(f"  {'total':8s} {'':4s}       "
                 f"{total['current_seconds']:8.2f}s "
                 f"(baseline {total['baseline_seconds']:.2f}s, "
                 f"{_format_speedup(total['speedup'])})")
    return "\n".join(lines)
