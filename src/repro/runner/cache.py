"""Content-addressed on-disk cache of experiment results.

Each :class:`~repro.runner.spec.RunResult` is stored as one JSON file
under ``<root>/v<schema>/<digest>.json`` where ``digest`` is the
spec's SHA-256 content address (:meth:`ExperimentSpec.digest`).  The
key is ``(schema_version, spec digest)``: changing any spec field *or*
bumping :data:`~repro.runner.spec.SPEC_SCHEMA_VERSION` lands on a new
path, so stale entries are never read — only orphaned (reclaim with
:meth:`ResultCache.clear` or ``python -m repro cache --clear``).

The default root is ``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``.  Corrupted or
unreadable entries are treated as misses (the point is recomputed and
the entry rewritten); writes are atomic (temp file + rename) so a
killed run never leaves a truncated entry behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

from repro.runner.spec import SPEC_SCHEMA_VERSION, ExperimentSpec, RunResult

#: Environment override for the cache root (used by tests and CI to
#: keep runs hermetic).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` > ``$XDG_CACHE_HOME/repro`` > ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


class ResultCache:
    """Digest-keyed store of :class:`RunResult` payloads.

    ``hits`` / ``misses`` / ``stores`` count this process's traffic —
    the timing report uses them to prove a warm rerun executed nothing.
    """

    def __init__(self, root: str | Path | None = None,
                 schema_version: int = SPEC_SCHEMA_VERSION) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.schema_version = schema_version
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def path_for(self, spec: ExperimentSpec) -> Path:
        digest = spec.digest(self.schema_version)
        return self.root / f"v{self.schema_version}" / f"{digest}.json"

    def get(self, spec: ExperimentSpec) -> Optional[RunResult]:
        """The cached result for ``spec``, or ``None``.

        Any failure mode — missing file, unreadable file, malformed
        JSON, schema/digest mismatch — is a miss, never an error.
        """
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
            if payload.get("schema") != self.schema_version:
                raise ValueError("schema mismatch")
            if payload.get("digest") != spec.digest(self.schema_version):
                raise ValueError("digest mismatch")
            result = RunResult.from_dict(payload, cached=True)
            if result.spec != spec:
                raise ValueError("spec mismatch")
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: ExperimentSpec, result: RunResult) -> Path:
        """Atomically store ``result`` under ``spec``'s digest."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": self.schema_version,
                   "digest": spec.digest(self.schema_version),
                   **result.to_dict()}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=2))
        tmp.replace(path)
        self.stores += 1
        return path

    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        """All stored entry files (every schema generation)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("v*/*.json"))

    def clear(self) -> int:
        """Delete every stored entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing deletion
                pass
        return removed
