"""Content-addressed on-disk cache of experiment results.

Each :class:`~repro.runner.spec.RunResult` is stored as one JSON file
under ``<root>/v<schema>/<digest>.json`` where ``digest`` is the
spec's SHA-256 content address (:meth:`ExperimentSpec.digest`).  The
key is ``(schema_version, spec digest)``: changing any spec field *or*
bumping :data:`~repro.runner.spec.SPEC_SCHEMA_VERSION` lands on a new
path, so stale entries are never read — only orphaned (reclaim with
:meth:`ResultCache.clear` or ``python -m repro cache --clear``).

The default root is ``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``.  Unreadable entries are treated as misses (the
point is recomputed and the entry rewritten); *corrupted* entries —
readable but failing the JSON/schema/digest checks — are additionally
quarantined by renaming to ``<name>.json.corrupt``, so a warm rerun
pays the parse-and-reject cost once, not on every pass, while the bad
bytes stay on disk for inspection.  Writes are atomic (temp file +
rename) so a killed run never leaves a truncated entry behind.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from pathlib import Path
from typing import Any, Optional

from repro.obs.log import get_logger
from repro.runner.spec import SPEC_SCHEMA_VERSION, ExperimentSpec, RunResult
from repro.telemetry.session import current_telemetry, utc_timestamp

#: Environment override for the cache root (used by tests and CI to
#: keep runs hermetic).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: File (under the cache root) recording the most recent scheduler
#: pass's hit/miss tally — what ``repro cache`` reports.
LAST_RUN_FILE = "last_run.json"

log = get_logger("runner.cache")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` > ``$XDG_CACHE_HOME/repro`` > ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


class ResultCache:
    """Digest-keyed store of :class:`RunResult` payloads.

    ``hits`` / ``misses`` / ``stores`` count this process's traffic —
    the timing report uses them to prove a warm rerun executed nothing.
    """

    def __init__(self, root: str | Path | None = None,
                 schema_version: int = SPEC_SCHEMA_VERSION) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.schema_version = schema_version
        self.hits = 0
        self.misses = 0
        self.stores = 0
        # Captured once: telemetry enabled after construction stays
        # invisible, keeping the guard monomorphic (PR 4 discipline).
        self.tele = current_telemetry()

    def _count(self, metric: str, **labels: str) -> None:
        if self.tele:
            self.tele.registry.counter(
                f"repro_cache_{metric}", labels or None,
                help=f"Result-cache {metric.replace('_', ' ')}").add(1)

    # ------------------------------------------------------------------
    def path_for(self, spec: ExperimentSpec) -> Path:
        digest = spec.digest(self.schema_version)
        return self.root / f"v{self.schema_version}" / f"{digest}.json"

    def get(self, spec: ExperimentSpec) -> Optional[RunResult]:
        """The cached result for ``spec``, or ``None``.

        Any failure mode — missing file, unreadable file, malformed
        JSON, schema/digest mismatch — is a miss, never an error.  A
        *corrupted* entry (the file exists but cannot be trusted) is
        additionally reported through the ``repro.runner.cache``
        logger, since the silent-recovery path hides real damage.
        """
        if not self.tele:
            return self._get(spec)
        with self.tele.span("cache.get",
                            digest=spec.digest(self.schema_version)[:12]
                            ) as record:
            result = self._get(spec)
            outcome = "hit" if result is not None else "miss"
            record["attrs"]["outcome"] = outcome
            self._count("requests", outcome=outcome)
            return result

    def _get(self, spec: ExperimentSpec) -> Optional[RunResult]:
        digest = spec.digest(self.schema_version)
        path = self.root / f"v{self.schema_version}" / f"{digest}.json"
        try:
            text = path.read_text()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as error:
            log.warning("unreadable result-cache entry %s (%s); "
                        "recomputing", path.name, error)
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            if payload.get("schema") != self.schema_version:
                raise ValueError("schema mismatch")
            if payload.get("digest") != digest:
                raise ValueError("digest mismatch")
            result = RunResult.from_dict(payload, cached=True)
            # The simulator field is an execution strategy excluded
            # from the digest: a scalar run may legitimately hit an
            # entry a vectorized run stored (and vice versa).  Anything
            # else differing under the same digest is corruption.
            if result.spec.replace(simulator=spec.simulator) != spec:
                raise ValueError("spec mismatch")
            if result.spec.simulator != spec.simulator:
                result = replace(result, spec=spec)
        except (ValueError, KeyError, TypeError) as error:
            quarantined = self._quarantine(path)
            log.warning("corrupted result-cache entry %s (%s); "
                        "quarantined as %s and recomputing",
                        path.name, error,
                        quarantined.name if quarantined else "<unremovable>")
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _quarantine(self, path: Path) -> Optional[Path]:
        """Move a corrupted entry aside so warm reruns stop re-parsing it.

        The ``<name>.json.corrupt`` rename takes the file out of
        :meth:`entries`'s ``v*/*.json`` glob and off :meth:`get`'s path
        while preserving the bytes for post-mortem inspection;
        :meth:`clear` reclaims quarantined files too.  Returns the new
        path, or ``None`` if the rename itself failed (the entry then
        stays in place and keeps being reported as a miss).
        """
        target = path.with_name(path.name + ".corrupt")
        self._count("quarantined")
        try:
            return path.replace(target)
        except OSError:
            return None

    def quarantined(self) -> list[Path]:
        """Entries moved aside by :meth:`_quarantine`."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("v*/*.json.corrupt"))

    def stale_temps(self) -> list[Path]:
        """Atomic-write temp files stranded by killed runs.

        :meth:`put` and :meth:`record_last_run` write through
        ``<name>.tmp.<pid>`` files before the atomic rename; a process
        killed between the write and the rename leaves the temp behind
        forever (it is keyed by a dead pid, so no later run reclaims
        it).  These are invisible to :meth:`entries` — ``repro cache``
        reports them and :meth:`clear` sweeps them.
        """
        if not self.root.is_dir():
            return []
        return sorted(list(self.root.glob("v*/*.tmp.*"))
                      + list(self.root.glob("*.tmp.*")))

    def put(self, spec: ExperimentSpec, result: RunResult) -> Path:
        """Atomically store ``result`` under ``spec``'s digest."""
        if not self.tele:
            return self._put(spec, result)
        with self.tele.span("cache.put",
                            digest=spec.digest(self.schema_version)[:12]):
            self._count("writes")
            return self._put(spec, result)

    def _put(self, spec: ExperimentSpec, result: RunResult) -> Path:
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": self.schema_version,
                   "digest": spec.digest(self.schema_version),
                   **result.to_dict()}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=2))
        tmp.replace(path)
        self.stores += 1
        return path

    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        """All stored entry files (every schema generation)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("v*/*.json"))

    def entry_info(self) -> list[dict[str, Any]]:
        """Per-entry manifest summary, in :meth:`entries` order.

        Each row carries the entry's spec digest (file stem), schema
        version (directory), size, and — when the stored payload has a
        manifest — the spec label, package version and creation time.
        Unreadable entries are reported with an ``error`` field rather
        than skipped, so damage is visible in ``repro cache`` output.
        """
        rows: list[dict[str, Any]] = []
        for path in self.entries():
            row: dict[str, Any] = {
                "digest": path.stem,
                "schema": path.parent.name,
                "size_bytes": 0,
            }
            try:
                # stat() races against concurrent deletion like every
                # other access; a vanished entry is an error row, not an
                # uncaught OSError.
                row["size_bytes"] = path.stat().st_size
                payload = json.loads(path.read_text())
                result = RunResult.from_dict(payload, cached=True)
            except (OSError, ValueError, KeyError, TypeError) as error:
                row["error"] = f"unreadable ({type(error).__name__})"
            else:
                row["label"] = result.spec.label
                manifest = result.manifest or {}
                row["package_version"] = manifest.get("package_version")
                row["created_at"] = manifest.get("created_at")
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    def record_last_run(self, command: str,
                        report: dict[str, Any]) -> Path:
        """Persist the tally of the scheduler pass that just finished
        (``repro cache`` reports it).  ``report`` is a
        :meth:`~repro.runner.pool.TimingReport.to_dict` payload."""
        path = self.root / LAST_RUN_FILE
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "command": command,
            # UTC, pinned +0000: the recorded tally must not depend on
            # the producing host's TZ (regression-tested).
            "recorded_at": utc_timestamp(),
            "requested": report.get("requested", 0),
            "unique": report.get("unique", 0),
            "executed": report.get("executed", 0),
            "cache_hits": report.get("cache_hits", 0),
            "stores": self.stores,
            "wall_seconds": report.get("wall_seconds", 0.0),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=2))
        tmp.replace(path)
        return path

    def last_run(self) -> Optional[dict[str, Any]]:
        """The most recent :meth:`record_last_run` payload, if any."""
        try:
            return json.loads((self.root / LAST_RUN_FILE).read_text())
        except (OSError, ValueError):
            return None

    def clear(self) -> int:
        """Delete every stored entry (quarantined entries and stranded
        atomic-write temps included); returns the number removed."""
        removed = 0
        for path in self.entries() + self.quarantined() + self.stale_temps():
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing deletion
                pass
        return removed
