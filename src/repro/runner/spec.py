"""Experiment descriptions: the single currency for a simulation point.

An :class:`ExperimentSpec` captures *everything* that determines a
simulation result — benchmark, trace-cache/preconstruction-buffer
sizes, static seeding, preprocessing, the simulation kind, instruction
budget and workload seed.  Because the dataclass is frozen and all its
fields are plain scalars, a spec is hashable (deduplicatable), picklable
(shippable to worker processes), and digestible (content-addressable in
the on-disk result cache).

A :class:`RunResult` is the envelope that comes back: the spec it
answers, a flat JSON-serialisable metrics mapping, the execution wall
time, and whether the result was served from cache.

Instruction budget resolution
-----------------------------
Historically the CLI ``--instructions`` flag and the
``REPRO_INSTRUCTIONS`` environment variable competed (the flag's
baked-in default silently shadowed the env var).  The single documented
precedence order, implemented by :func:`resolve_instructions`:

1. an **explicit value** (CLI flag, API argument, spec field) wins;
2. otherwise the ``REPRO_INSTRUCTIONS`` environment variable;
3. otherwise the built-in default, :data:`DEFAULT_INSTRUCTIONS`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, replace
from typing import Any, Mapping, Optional

from repro.core import PreconstructionConfig
from repro.preprocess import PreprocessConfig
from repro.processor import BackendConfig, ProcessorConfig
from repro.sim import FrontendConfig
from repro.trace import TraceCacheConfig

#: Bump when spec semantics or recorded metrics change incompatibly;
#: every cached result keyed under an older schema is ignored.
#: v2: timing-model bugfixes — trace-hit pace uses ceiling division
#: instead of ``round``, preconstruction I-cache port overdraft is
#: carried across ticks, and the default set-index hash is
#: PYTHONHASHSEED-independent.  Metrics move slightly; old cached
#: results must not be reused.
#: v3: ``kind="check"`` verdicts gain the static-vs-dynamic ``coverage``
#: oracle (and the verifier behind the generate gate grew to 16 rules);
#: verdicts cached under v2 would silently lack both.
#: v4: specs gain the ``mechanism`` field (the competing-frontend zoo)
#: and ``kind="check"`` verdicts validate the spec's mechanism; the
#: field participates in the digest, so every spec re-keys.
#: v5: specs gain the ``simulator`` execution-strategy field (scalar
#: vs. the batched struct-of-arrays kernel).  The field is *excluded*
#: from the digest — the two kernels are proven result-identical by
#: the differential battery, so their results are interchangeable —
#: but the version bump re-keys every entry so caches written before
#: the battery existed are never trusted to honour that contract.
SPEC_SCHEMA_VERSION = 5

#: Built-in per-run instruction budget (the harness scale documented in
#: EXPERIMENTS.md: the paper's 200M-instruction runs scaled down
#: alongside the ~30x smaller code footprints).
DEFAULT_INSTRUCTIONS = 60_000

#: Simulation kinds a spec can describe.
KINDS = ("frontend", "processor", "dynamic", "check")

#: Simulation kernels a spec can select (``simulator`` field):
#: ``"scalar"`` is the original one-point-at-a-time frontend kernel;
#: ``"vectorized"`` is the batched struct-of-arrays kernel
#: (:mod:`repro.vector`), result-identical by construction and by the
#: differential test battery.
SIMULATOR_KINDS = ("scalar", "vectorized")


def resolve_instructions(explicit: Optional[int] = None) -> int:
    """Resolve the per-run instruction budget.

    Precedence (highest first): ``explicit`` argument, the
    ``REPRO_INSTRUCTIONS`` environment variable, then
    :data:`DEFAULT_INSTRUCTIONS`.
    """
    if explicit is None:
        explicit = int(os.environ.get("REPRO_INSTRUCTIONS",
                                      DEFAULT_INSTRUCTIONS))
    if explicit <= 0:
        raise ValueError("instruction budget must be positive")
    return explicit


def build_frontend_config(tc_entries: int, pb_entries: int = 0,
                          static_seed: bool = False,
                          mechanism: str = "preconstruction"
                          ) -> FrontendConfig:
    """Standard frontend configuration for a TC/budget size point.

    ``pb_entries`` is the mechanism storage budget in 64-byte entries
    whatever the mechanism — preconstruction buffers for the paper's
    mechanism, record/request storage for the prefetcher zoo — so
    equal-``pb_entries`` points are equal-area comparisons.
    """
    if mechanism == "preconstruction":
        precon = (PreconstructionConfig(buffer_entries=pb_entries)
                  if pb_entries else None)
        return FrontendConfig(
            trace_cache=TraceCacheConfig(entries=tc_entries),
            preconstruction=precon, static_seed=static_seed)
    return FrontendConfig(trace_cache=TraceCacheConfig(entries=tc_entries),
                          preconstruction=None, static_seed=static_seed,
                          mechanism=mechanism, mechanism_budget=pb_entries)


def build_processor_config(tc_entries: int, pb_entries: int = 0,
                           preprocess: bool = False) -> ProcessorConfig:
    """Standard full-processor configuration (Figures 6/8)."""
    return ProcessorConfig(
        frontend=build_frontend_config(tc_entries, pb_entries),
        backend=BackendConfig(),
        preprocess=PreprocessConfig() if preprocess else None)


@dataclass(frozen=True)
class ExperimentSpec:
    """A frozen, hashable description of one simulation point.

    ``kind`` selects the simulator: ``"frontend"`` (Figure 5 /
    Tables 1-3 metrics), ``"processor"`` (the full timing model behind
    Figures 6/8; honours ``preprocess``), ``"dynamic"`` (the adaptive
    trace-storage partitioning extension), or ``"check"`` (the
    differential-validation oracles of :mod:`repro.check`; metrics are
    per-oracle violation counts, so fuzz verdicts ride the same result
    cache as simulation points).

    ``instructions`` left as ``None`` is resolved eagerly at
    construction via :func:`resolve_instructions`, so a spec always
    carries a concrete budget and its digest never depends on ambient
    state afterwards.  ``workload_seed`` of ``None`` keeps the
    benchmark profile's own seed.
    """

    benchmark: str
    tc_entries: int = 256
    pb_entries: int = 0
    static_seed: bool = False
    preprocess: bool = False
    kind: str = "frontend"
    instructions: Optional[int] = None
    workload_seed: Optional[int] = None
    #: Frontend fill/prefetch mechanism (:mod:`repro.frontends`
    #: registry name); ``pb_entries`` is its storage budget whatever
    #: the mechanism.
    mechanism: str = "preconstruction"
    #: Execution strategy, not result identity: which kernel computes
    #: the point (:data:`SIMULATOR_KINDS`).  Excluded from the digest —
    #: scalar and vectorized results are interchangeable (differential
    #: battery) — so either kernel's run hits the other's cache entry.
    simulator: str = "scalar"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown spec kind {self.kind!r}; "
                             f"choose from {KINDS}")
        if not self.benchmark:
            raise ValueError("benchmark must be a non-empty name")
        if self.tc_entries <= 0:
            raise ValueError("tc_entries must be positive")
        if self.pb_entries < 0:
            raise ValueError("pb_entries must be non-negative")
        if self.preprocess and self.kind != "processor":
            raise ValueError("preprocess requires kind='processor'")
        from repro.frontends import mechanism_names
        if self.mechanism not in mechanism_names():
            raise ValueError(f"unknown mechanism {self.mechanism!r}; "
                             f"choose from {mechanism_names()}")
        if self.mechanism != "preconstruction" \
                and self.kind in ("dynamic", "processor"):
            raise ValueError(f"kind={self.kind!r} supports only the "
                             "preconstruction mechanism")
        if self.simulator not in SIMULATOR_KINDS:
            raise ValueError(f"unknown simulator {self.simulator!r}; "
                             f"choose from {SIMULATOR_KINDS}")
        if self.simulator != "scalar" \
                and self.kind in ("dynamic", "processor"):
            raise ValueError(f"kind={self.kind!r} supports only the "
                             "scalar simulator")
        object.__setattr__(self, "instructions",
                           resolve_instructions(self.instructions))

    # ------------------------------------------------------------------
    # Derived configurations
    # ------------------------------------------------------------------
    def frontend_config(self) -> FrontendConfig:
        """The :class:`FrontendConfig` this spec describes."""
        return build_frontend_config(self.tc_entries, self.pb_entries,
                                     static_seed=self.static_seed,
                                     mechanism=self.mechanism)

    def processor_config(self) -> ProcessorConfig:
        """The :class:`ProcessorConfig` this spec describes."""
        return build_processor_config(self.tc_entries, self.pb_entries,
                                      preprocess=self.preprocess)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def replace(self, **changes: Any) -> "ExperimentSpec":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return replace(self, **changes)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        return cls(**dict(payload))

    def digest(self, schema_version: int = SPEC_SCHEMA_VERSION) -> str:
        """Content address of this spec under ``schema_version``.

        Any field change — and any schema-version bump — yields a new
        digest, which is what invalidates stale cache entries.  The
        ``simulator`` field is excluded: it selects *how* the point is
        computed, never *what* it computes, so both kernels share one
        content address (and one cache entry).
        """
        payload = {"schema": schema_version, **self.to_dict()}
        payload.pop("simulator", None)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @property
    def label(self) -> str:
        """Short human-readable identity for progress/timing lines."""
        parts = [self.benchmark, f"tc={self.tc_entries}"]
        if self.pb_entries:
            parts.append(f"pb={self.pb_entries}")
        if self.mechanism != "preconstruction":
            parts.append(self.mechanism)
        if self.static_seed:
            parts.append("static-seed")
        if self.preprocess:
            parts.append("preprocess")
        if self.kind != "frontend":
            parts.append(self.kind)
        if self.simulator != "scalar":
            parts.append(self.simulator)
        return " ".join(parts)


@dataclass(frozen=True)
class RunResult:
    """One simulation point's answer.

    ``metrics`` holds only JSON-serialisable values (numbers, plus
    lists for the dynamic-partition trajectory), so a result round-trips
    through the on-disk cache bit-exactly: ``json`` preserves ints and
    emits shortest round-trip reprs for floats.

    ``manifest`` is the provenance record
    (:func:`repro.obs.manifest.build_manifest`): spec digest, schema
    and package versions, seed and host info.  It is carried through
    the on-disk cache but is *not* part of result identity — entries
    produced on other hosts or package versions under the same schema
    still hit.
    """

    spec: ExperimentSpec
    metrics: dict[str, Any]
    wall_seconds: float = 0.0
    cached: bool = False
    manifest: Optional[dict[str, Any]] = None

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "spec": self.spec.to_dict(), "metrics": dict(self.metrics),
            "wall_seconds": self.wall_seconds}
        if self.manifest is not None:
            payload["manifest"] = dict(self.manifest)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any], *,
                  cached: bool = False) -> "RunResult":
        manifest = payload.get("manifest")
        return cls(spec=ExperimentSpec.from_dict(payload["spec"]),
                   metrics=dict(payload["metrics"]),
                   wall_seconds=float(payload.get("wall_seconds", 0.0)),
                   cached=cached,
                   manifest=dict(manifest) if manifest else None)
