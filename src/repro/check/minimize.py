"""Shrink a failing check case to a minimal reproducer.

A fuzz finding is an adversarial :class:`~repro.workloads.WorkloadProfile`
plus an instruction budget under which at least one oracle reports
violations.  Raw fuzz profiles differ from the default profile in a
dozen knobs, most of them irrelevant to the failure; this module
shrinks the case along two axes:

1. **Budget bisection** — halve the instruction budget while the
   failure persists (cheap first: every later probe reruns the stack
   at the reduced budget).
2. **Knob resetting** — greedily reset each differing knob to the
   default :class:`WorkloadProfile` value, keeping the reset whenever
   the restricted oracle set still fails; iterate passes to a fixpoint
   (resetting one knob can unlock another).

Probes re-check only the *failing* oracles, and the lazy
:class:`~repro.check.oracles.CheckBundle` legs mean each probe builds
just the execution legs those oracles read.

The result is a :class:`MinimizedCase` that renders a self-contained
repro script: runnable with nothing but the repo on ``PYTHONPATH``,
pinning the seed and only the knobs that matter.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.check.harness import CheckReport, check_profile
from repro.workloads import WorkloadProfile

#: Budget bisection never goes below this — the frontend needs a few
#: hundred committed instructions before the counters mean anything.
MIN_INSTRUCTIONS = 500

#: Knob-reset passes give up after this many full sweeps (each pass
#: must strictly shrink the diff to continue, so this is a backstop,
#: not a tuning knob).
MAX_PASSES = 8


def knob_diff(profile: WorkloadProfile) -> dict[str, Any]:
    """Knobs where ``profile`` differs from the default profile.

    ``name`` and ``seed`` are identity, not knobs — they never appear
    in the diff.
    """
    baseline = WorkloadProfile(name=profile.name, seed=profile.seed)
    diff: dict[str, Any] = {}
    for spec_field in fields(WorkloadProfile):
        if spec_field.name in ("name", "seed"):
            continue
        value = getattr(profile, spec_field.name)
        if value != getattr(baseline, spec_field.name):
            diff[spec_field.name] = value
    return diff


@dataclass(frozen=True)
class MinimizedCase:
    """A shrunk failing case plus the evidence trail."""

    profile: WorkloadProfile
    instructions: int
    tc_entries: int
    pb_entries: int
    static_seed: bool
    mechanism: str
    simulator: str
    failing_oracles: tuple[str, ...]
    report: CheckReport
    probes: int
    original_instructions: int
    original_knobs: int

    @property
    def knobs(self) -> dict[str, Any]:
        """The surviving (load-bearing) knob diff from the default."""
        return knob_diff(self.profile)

    def describe(self) -> str:
        knobs = self.knobs
        rendered = ", ".join(f"{k}={v!r}" for k, v in sorted(knobs.items()))
        return (f"seed={self.profile.seed} instructions={self.instructions} "
                f"knobs[{len(knobs)}]: {rendered or '(default profile)'}")

    def script(self) -> str:
        """A self-contained repro script for this case."""
        knobs = self.knobs
        knob_lines = "".join(
            f"    {name}={knobs[name]!r},\n" for name in sorted(knobs))
        oracles = ", ".join(repr(name) for name in self.failing_oracles)
        messages = "".join(
            f"#   {violation}\n" for violation in self.report.violations[:5])
        return (
            "#!/usr/bin/env python\n"
            '"""Minimized repro for a repro.check fuzz finding.\n'
            "\n"
            "Run with the repository on PYTHONPATH:\n"
            "    PYTHONPATH=src python repro_case.py\n"
            '"""\n'
            "# Violations at minimization time:\n"
            f"{messages}"
            "from repro.check import check_profile\n"
            "from repro.workloads import WorkloadProfile\n"
            "\n"
            "profile = WorkloadProfile(\n"
            f"    name={self.profile.name!r},\n"
            f"    seed={self.profile.seed!r},\n"
            f"{knob_lines}"
            ")\n"
            "report = check_profile(\n"
            f"    profile, {self.instructions},\n"
            f"    tc_entries={self.tc_entries}, "
            f"pb_entries={self.pb_entries}, "
            f"static_seed={self.static_seed},\n"
            f"    mechanism={self.mechanism!r}, "
            f"simulator={self.simulator!r},\n"
            f"    oracles=[{oracles}],\n"
            ")\n"
            "for violation in report.violations:\n"
            "    print(violation)\n"
            'assert not report.ok, "case no longer reproduces"\n'
            'print("reproduced:", len(report.violations), "violation(s)")\n'
        )

    def write_script(self, path: str | Path) -> Path:
        target = Path(path)
        target.write_text(self.script())
        return target


def _failing(report: CheckReport) -> tuple[str, ...]:
    return tuple(name for name, count in report.by_oracle().items() if count)


def minimize_case(profile: WorkloadProfile, instructions: int, *,
                  tc_entries: int = 128, pb_entries: int = 64,
                  static_seed: bool = False,
                  mechanism: str = "preconstruction",
                  simulator: str = "scalar",
                  oracles: Optional[Sequence[str]] = None,
                  ) -> Optional[MinimizedCase]:
    """Shrink a failing case; ``None`` if it doesn't fail to begin with.

    ``oracles`` restricts the initial check (defaults to all); probes
    during shrinking always use exactly the oracles that failed
    initially, so the minimizer converges on *that* failure rather than
    wandering to a different one.
    """
    probes = 0

    def probe(candidate: WorkloadProfile, budget: int,
              selected: Sequence[str]) -> CheckReport:
        nonlocal probes
        probes += 1
        return check_profile(candidate, budget, tc_entries=tc_entries,
                             pb_entries=pb_entries, static_seed=static_seed,
                             mechanism=mechanism, simulator=simulator,
                             oracles=selected)

    initial = probe(profile, instructions, oracles)
    if initial.ok:
        return None
    failing = _failing(initial)
    # The "generate" pseudo-oracle is not in the registry; probe with
    # the registered failing subset (generation failures surface
    # regardless of the oracle selection).
    probe_oracles = tuple(name for name in failing if name != "generate")

    best_profile, best_budget, best_report = profile, instructions, initial
    original_knobs = len(knob_diff(profile))

    # Phase 1: halve the budget while the failure persists.
    while best_budget // 2 >= MIN_INSTRUCTIONS:
        candidate = probe(best_profile, best_budget // 2, probe_oracles)
        if candidate.ok:
            break
        best_budget //= 2
        best_report = candidate

    # Phase 2: greedily reset knobs toward the default profile.
    for _ in range(MAX_PASSES):
        progressed = False
        for knob in sorted(knob_diff(best_profile)):
            baseline_value = getattr(
                WorkloadProfile(name=profile.name, seed=profile.seed), knob)
            try:
                candidate_profile = replace(
                    best_profile, **{knob: baseline_value})
            except ValueError:
                continue  # reset would violate profile invariants
            candidate = probe(candidate_profile, best_budget, probe_oracles)
            if not candidate.ok:
                best_profile = candidate_profile
                best_report = candidate
                progressed = True
        if not progressed:
            break

    return MinimizedCase(
        profile=best_profile, instructions=best_budget,
        tc_entries=tc_entries, pb_entries=pb_entries,
        static_seed=static_seed, mechanism=mechanism, simulator=simulator,
        failing_oracles=failing, report=best_report, probes=probes,
        original_instructions=instructions, original_knobs=original_knobs)
