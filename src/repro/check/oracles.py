"""The cross-model invariant catalogue.

Each oracle is a pure function ``CheckBundle -> list[Violation]``.  The
bundle lazily materialises every execution leg a case needs — two
independent functional runs, frontend replays with observability on and
off, a trace-partition replay, a preconstruction-flipped variant, the
recovered static CFG — so an oracle subset (the minimizer's fast path)
only pays for the legs it actually reads.

Oracle catalogue (name → what it proves):

``determinism``
    The generator and the functional engine are pure functions of the
    profile: regenerating the image yields the same content digest, and
    two fresh engines produce identical committed streams.
``conservation``
    Timing-counter conservation laws over the frontend run: fetched ≥
    committed, hits + misses = traces = next-trace predictions =
    trace-cache lookups, slow-path/bimodal/I-cache counter bounds.
``intervals``
    The bucketed Figure-5 counters from :mod:`repro.obs` sum across
    interval buckets to the end-of-run totals, and the histograms'
    masses agree with the counters they were fed from.
``cfg``
    Static-CFG-vs-dynamic-edge containment: every edge the committed
    stream takes exists in the statically recovered CFG (branch and
    switch targets in block successor sets, calls landing on procedure
    entries, returns matching a shadow call stack).
``metamorphic``
    Observability on/off, stream-fed vs trace-partition-fed replay,
    and preconstruction on/off leave the architectural results
    untouched.
``roundtrip``
    A result survives the content-addressed cache's JSON round trip
    bit-exactly.
``coverage``
    Static-vs-dynamic trace-coverage containment: every trace start
    point the dynamic partition produced is predicted by the static
    trace delimitation (:mod:`repro.static.predictor`), every executed
    pc lies inside the predicted coverage set, and the prediction never
    strays outside static reachability (gross over-approximation).
``simulator``
    Scalar-vs-batched kernel differential: the struct-of-arrays kernel
    (:mod:`repro.vector`) must reproduce the scalar kernel exactly —
    every raw counter, the full observability event stream, and the
    trace-cache working set left resident at end of run.

A capped number of violations per oracle are *described*; the count is
always exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Callable

from repro.engine import FunctionalEngine
from repro.isa import INSTRUCTION_BYTES, Kind
from repro.runner.spec import build_frontend_config
from repro.sim import run_frontend
from repro.workloads import WorkloadProfile, generate

#: Described violations per oracle; further ones only count.
MAX_DETAILED_VIOLATIONS = 5


@dataclass(frozen=True)
class Violation:
    """One broken invariant.

    ``detail`` holds only JSON-serialisable scalars so violations can
    ride inside :class:`~repro.runner.spec.RunResult` metrics.
    """

    oracle: str
    message: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        if not self.detail:
            return f"[{self.oracle}] {self.message}"
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.oracle}] {self.message} ({rendered})"


class _Claims:
    """Collects violations for one oracle with the detail cap applied."""

    def __init__(self, oracle: str) -> None:
        self.oracle = oracle
        self.violations: list[Violation] = []
        self._overflow = 0

    def violate(self, message: str, **detail: Any) -> None:
        if len(self.violations) < MAX_DETAILED_VIOLATIONS:
            self.violations.append(Violation(self.oracle, message, detail))
        else:
            self._overflow += 1

    def equal(self, law: str, left: Any, right: Any, **detail: Any) -> None:
        if left != right:
            self.violate(f"{law}: {left!r} != {right!r}", **detail)

    def no_more_than(self, law: str, small: Any, big: Any,
                     **detail: Any) -> None:
        if small > big:
            self.violate(f"{law}: {small!r} > {big!r}", **detail)

    def done(self) -> list[Violation]:
        if self._overflow:
            self.violations.append(Violation(
                self.oracle,
                f"... and {self._overflow} further violations"))
        return self.violations


class CheckBundle:
    """Lazily-built execution legs of one differential-validation case.

    Everything is a pure function of ``(profile, instructions,
    tc_entries, pb_entries, static_seed, mechanism)``; legs are cached
    so several oracles can share them.
    """

    def __init__(self, profile: WorkloadProfile, instructions: int, *,
                 tc_entries: int = 128, pb_entries: int = 64,
                 static_seed: bool = False,
                 mechanism: str = "preconstruction",
                 simulator: str = "scalar") -> None:
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        self.profile = profile
        self.instructions = instructions
        self.tc_entries = tc_entries
        self.pb_entries = pb_entries
        self.static_seed = static_seed
        self.mechanism = mechanism
        self.simulator = simulator

    # -- workload / architectural legs ---------------------------------
    @cached_property
    def workload(self):
        """The generated (verifier-gated) workload."""
        return generate(self.profile)

    @property
    def image(self):
        return self.workload.image

    @cached_property
    def stream(self):
        """The committed stream (first functional run)."""
        return FunctionalEngine(self.image).run(self.instructions)

    @cached_property
    def second_workload(self):
        """An independent regeneration, for the determinism oracle."""
        return generate(self.profile)

    @cached_property
    def second_stream(self):
        """An independent re-execution over the regenerated image."""
        return FunctionalEngine(self.second_workload.image).run(
            self.instructions)

    # -- timing legs ---------------------------------------------------
    @property
    def config(self):
        return build_frontend_config(self.tc_entries, self.pb_entries,
                                     static_seed=self.static_seed,
                                     mechanism=self.mechanism)

    @cached_property
    def traces(self):
        """The stream's trace partition under the standard selection."""
        from repro.trace import traces_of_stream

        return traces_of_stream(self.stream, self.config.selection)

    @cached_property
    def scalar_run(self):
        """Frontend replay under the scalar kernel, observability off."""
        return run_frontend(self.image, self.config, self.instructions,
                            traces=self.traces)

    @cached_property
    def vector_plan(self):
        """The batch plan the struct-of-arrays kernel runs from.

        Construction cross-checks the vectorized trace delimitation
        against the scalar partition and raises
        :class:`~repro.vector.PlanMismatchError` on any divergence —
        the ``simulator`` oracle reports that as a violation.
        """
        from repro.vector import build_plan

        config = self.config
        return build_plan(
            self.image, list(self.stream), self.traces,
            selection=config.selection,
            predictor=config.predictor,
            bimodal_entries=config.bimodal_entries,
            train_bimodal=config.train_bimodal_on_all_branches,
            line_bytes=config.icache.line_bytes)

    @cached_property
    def vector_run(self):
        """Frontend replay under the batched kernel, observability off."""
        from repro.vector import run_frontend_batch

        return run_frontend_batch(self.image, [self.config],
                                  self.vector_plan)[0]

    @cached_property
    def plain_run(self):
        """Frontend replay, observability off, trace-partition fed —
        under the bundle's selected kernel."""
        if self.simulator == "vectorized":
            return self.vector_run
        return self.scalar_run

    @cached_property
    def scalar_events(self):
        """The scalar kernel's full observability event stream."""
        from repro.obs import ObsBus, RingBufferSink

        sink = RingBufferSink(capacity=None)
        run_frontend(self.image, self.config, self.instructions,
                     traces=self.traces, obs=ObsBus(sink))
        return list(sink.events)

    @cached_property
    def vector_events(self):
        """The batched kernel's full observability event stream."""
        from repro.obs import ObsBus, RingBufferSink
        from repro.vector import run_frontend_batch

        sink = RingBufferSink(capacity=None)
        run_frontend_batch(self.image, [self.config], self.vector_plan,
                           obs=ObsBus(sink))
        return list(sink.events)

    @cached_property
    def observed_run(self):
        """Frontend replay with the event bus attached.

        Returns ``(FrontendResult, ObsBus)``; the bus carries the
        interval metrics the ``intervals`` oracle audits.
        """
        from repro.obs import NullSink, ObsBus

        bus = ObsBus(NullSink())
        result = run_frontend(self.image, self.config, self.instructions,
                              traces=self.traces, obs=bus)
        return result, bus

    @cached_property
    def stream_fed_run(self):
        """Frontend replay fed record-by-record through the selector."""
        return run_frontend(self.image, self.config, self.instructions,
                            stream=list(self.stream))

    @cached_property
    def flipped_run(self):
        """Frontend replay with the mechanism toggled the other way."""
        flipped_pb = 0 if self.pb_entries else 64
        config = build_frontend_config(self.tc_entries, flipped_pb,
                                       mechanism=self.mechanism)
        return run_frontend(self.image, config, self.instructions,
                            traces=self.traces)

    # -- static legs ---------------------------------------------------
    @cached_property
    def cfg(self):
        from repro.static import recover_cfg

        return recover_cfg(self.image)

    @cached_property
    def prediction(self):
        """Static trace-coverage prediction under the same selection
        config the dynamic partition uses."""
        from repro.static.predictor import predict_coverage

        return predict_coverage(self.image,
                                config=self.config.selection)


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------
def check_determinism(bundle: CheckBundle) -> list[Violation]:
    claims = _Claims("determinism")
    claims.equal("regenerated image digest",
                 bundle.image.digest(), bundle.second_workload.image.digest())
    stream_a, stream_b = bundle.stream, bundle.second_stream
    claims.equal("stream length", len(stream_a), len(stream_b))
    for i, (a, b) in enumerate(zip(stream_a, stream_b)):
        if a != b:
            claims.violate("stream records diverge",
                           index=i, pc_a=a.pc, pc_b=b.pc,
                           next_a=a.next_pc, next_b=b.next_pc)
    return claims.done()


def check_conservation(bundle: CheckBundle) -> list[Violation]:
    claims = _Claims("conservation")
    result = bundle.plain_run
    stats = result.stats

    claims.equal("trace_hits + trace_misses == traces",
                 stats.trace_hits + stats.trace_misses, stats.traces)
    claims.equal("slow_path_traces == trace_misses",
                 stats.slow_path_traces, stats.trace_misses)
    claims.no_more_than("buffer_hits <= trace_hits",
                        stats.buffer_hits, stats.trace_hits)
    claims.equal("next-trace predictions == traces",
                 stats.ntp_correct + stats.ntp_wrong + stats.ntp_none,
                 stats.traces)

    # Instruction supply: every committed instruction arrives via the
    # trace cache or the slow path; the slow path can never supply more
    # than was committed (fetched >= committed, with equality split).
    committed = len(bundle.stream)
    claims.equal("stats.instructions == committed stream length",
                 stats.instructions, committed)
    claims.equal("trace partition covers the stream",
                 sum(len(t) for t in bundle.traces), committed)
    claims.no_more_than("slow_instructions <= instructions",
                        stats.slow_instructions, stats.instructions)
    claims.no_more_than(
        "miss-supplied instructions <= slow instructions",
        stats.slow_instructions_from_misses, stats.slow_instructions)

    # Trace cache: lookups partition into hits + misses, one counted
    # probe per dispatched trace, occupancy bounded by capacity.
    tc_stats = result.trace_cache.stats
    claims.equal("TC hits + misses == lookups",
                 tc_stats.hits + tc_stats.misses, tc_stats.accesses)
    claims.equal("one counted TC lookup per trace",
                 tc_stats.accesses, stats.traces)
    claims.no_more_than("TC occupancy <= capacity",
                        result.trace_cache.occupancy(),
                        result.trace_cache.config.entries)

    # Slow-path memory and predictor counters.
    claims.no_more_than("slow line misses <= accesses",
                        stats.slow_line_misses, stats.slow_line_accesses)
    claims.no_more_than("precon line misses <= accesses",
                        stats.precon_line_misses, stats.precon_line_accesses)
    claims.no_more_than("bimodal mispredictions <= predictions",
                        stats.bimodal_mispredictions,
                        stats.bimodal_predictions)

    # Cycle accounting: every dispatched trace costs at least one
    # cycle; the idle cycles funding preconstruction are a subset.
    claims.no_more_than("traces <= cycles", stats.traces, stats.cycles)
    claims.no_more_than("idle_cycles <= cycles",
                        stats.idle_cycles, stats.cycles)
    return claims.done()


def check_intervals(bundle: CheckBundle) -> list[Violation]:
    claims = _Claims("intervals")
    result, bus = bundle.observed_run
    stats = result.stats
    metrics = bus.metrics
    rows = metrics.interval_rows()

    def bucket_sum(counter: str) -> int:
        return sum(row[counter] for row in rows)

    for counter, total in (
            ("traces", stats.traces),
            ("instructions", stats.instructions),
            ("trace_hits", stats.trace_hits),
            ("trace_misses", stats.trace_misses),
            ("buffer_hits", stats.buffer_hits),
            ("idle_cycles", stats.idle_cycles)):
        claims.equal(f"interval buckets sum to total {counter}",
                     bucket_sum(counter), total)

    hist = metrics.trace_length
    claims.equal("trace_length histogram mass == traces",
                 hist.total, stats.traces)
    claims.equal("trace_length histogram weight == instructions",
                 sum(v * c for v, c in hist.counts.items()),
                 stats.instructions)
    idle = metrics.idle_burst_length
    claims.equal("idle_burst histogram weight == idle_cycles",
                 sum(v * c for v, c in idle.counts.items()),
                 stats.idle_cycles)
    return claims.done()


def check_cfg(bundle: CheckBundle) -> list[Violation]:
    claims = _Claims("cfg")
    cfg = bundle.cfg
    entries = {proc.start for proc in cfg.procedures}
    shadow_stack: list[int] = []
    for index, record in enumerate(bundle.stream):
        inst = record.inst
        pc, next_pc = record.pc, record.next_pc
        block = cfg.block_at(pc)
        if block is None:
            claims.violate("executed pc not covered by any recovered block",
                           index=index, pc=pc)
            continue
        kind = inst.kind
        if kind is Kind.BRANCH or kind is Kind.JUMP:
            terminator = block.end - INSTRUCTION_BYTES
            if pc != terminator:
                claims.violate(
                    "control transfer is not a recovered block terminator",
                    index=index, pc=pc, block_start=block.start,
                    block_end=block.end)
            elif next_pc not in block.successors:
                claims.violate("executed edge missing from recovered CFG",
                               index=index, pc=pc, next_pc=next_pc,
                               successors=list(block.successors))
        elif kind is Kind.CALL or kind is Kind.CALL_INDIRECT:
            shadow_stack.append(pc + INSTRUCTION_BYTES)
            if next_pc not in entries:
                claims.violate("call target is not a procedure entry",
                               index=index, pc=pc, next_pc=next_pc)
        elif kind is Kind.JUMP_INDIRECT:
            if inst.is_return:
                if not shadow_stack:
                    claims.violate("return with empty shadow call stack",
                                   index=index, pc=pc, next_pc=next_pc)
                elif next_pc != shadow_stack[-1]:
                    claims.violate("return does not match shadow call stack",
                                   index=index, pc=pc, next_pc=next_pc,
                                   expected=shadow_stack[-1])
                    shadow_stack.pop()
                else:
                    shadow_stack.pop()
            else:
                terminator = block.end - INSTRUCTION_BYTES
                if pc != terminator:
                    claims.violate(
                        "switch is not a recovered block terminator",
                        index=index, pc=pc, block_start=block.start)
                elif next_pc not in block.successors:
                    claims.violate(
                        "executed switch edge missing from recovered CFG",
                        index=index, pc=pc, next_pc=next_pc,
                        successors=list(block.successors))
    return claims.done()


def check_metamorphic(bundle: CheckBundle) -> list[Violation]:
    claims = _Claims("metamorphic")
    plain = bundle.plain_run.stats.summary()
    observed = bundle.observed_run[0].stats.summary()
    stream_fed = bundle.stream_fed_run.stats.summary()
    for key in plain:
        claims.equal(f"obs-on == obs-off for {key}",
                     observed.get(key), plain[key])
        claims.equal(f"stream-fed == trace-partition-fed for {key}",
                     stream_fed.get(key), plain[key])
    # The frontend mechanism changes timing, never architecture: the
    # committed instruction count and the trace partition are invariant.
    flipped = bundle.flipped_run.stats
    claims.equal("instructions invariant under mechanism flip",
                 flipped.instructions, bundle.plain_run.stats.instructions)
    claims.equal("trace count invariant under mechanism flip",
                 flipped.traces, bundle.plain_run.stats.traces)
    return claims.done()


def check_roundtrip(bundle: CheckBundle) -> list[Violation]:
    import tempfile

    from repro.runner import ExperimentSpec, ResultCache, RunResult

    claims = _Claims("roundtrip")
    spec = ExperimentSpec(benchmark=bundle.profile.name,
                          tc_entries=bundle.tc_entries,
                          pb_entries=bundle.pb_entries,
                          instructions=bundle.instructions)
    metrics = dict(bundle.plain_run.stats.summary())
    result = RunResult(spec=spec, metrics=metrics)
    with tempfile.TemporaryDirectory(prefix="repro-check-") as root:
        cache = ResultCache(root)
        cache.put(spec, result)
        loaded = cache.get(spec)
    if loaded is None:
        claims.violate("stored result not served back from the cache")
        return claims.done()
    claims.equal("cached metrics survive the JSON round trip",
                 loaded.metrics, metrics)
    claims.equal("cached spec identity", loaded.spec, spec)
    return claims.done()


def check_coverage(bundle: CheckBundle) -> list[Violation]:
    """Static trace delimitation contains the dynamic behaviour.

    The predictor walks every statically reachable delimitation path,
    so — when its exploration completed within budget — the dynamic
    run can never produce a trace start point or execute an
    instruction the prediction missed (the truncation/leftover rebase
    argument in DESIGN.md §13).  The reverse direction guards against
    gross over-approximation: predicted coverage must stay inside the
    conservative static reachability set (it is usually *smaller*,
    since data-scan indirect targets pull dead procedures into the
    reachable set, so no lower bound on the ratio is asserted).
    """
    claims = _Claims("coverage")
    prediction = bundle.prediction
    if not prediction.complete:
        # Exploration budget exhausted: containment is not guaranteed,
        # and an incomplete prediction on the small images the checker
        # drives is itself suspicious.
        claims.violate("static coverage prediction incomplete "
                       "(state budget exhausted)",
                       states=prediction.states_explored)
        return claims.done()

    seen_starts: set[int] = set()
    for index, trace in enumerate(bundle.traces):
        start = trace.start_pc
        if start in seen_starts:
            continue
        seen_starts.add(start)
        if not prediction.predicts_start(start):
            claims.violate("dynamic trace start not statically predicted",
                           index=index, start_pc=start)

    executed = {record.pc for record in bundle.stream}
    for pc in sorted(executed):
        if not prediction.covers(pc):
            claims.violate("executed pc outside predicted coverage",
                           pc=pc)

    stray = prediction.covered_pcs - prediction.live_pcs
    claims.equal("predicted coverage within static reachability",
                 len(stray), 0,
                 sample=sorted(stray)[:MAX_DETAILED_VIOLATIONS])
    return claims.done()


def check_simulator(bundle: CheckBundle) -> list[Violation]:
    """The batched kernel is bit-identical to the scalar one.

    Three independent surfaces, coarsest to finest: the full raw
    counter record (every :class:`FrontendStats` field, not just the
    summary), the trace-cache working set left resident at end of run,
    and the complete observability event stream.
    """
    import dataclasses

    from repro.vector import PlanMismatchError

    claims = _Claims("simulator")
    try:
        bundle.vector_plan
    except PlanMismatchError as error:
        claims.violate("vectorized trace delimitation diverges from "
                       f"the scalar partition: {error}")
        return claims.done()

    scalar = bundle.scalar_run
    vector = bundle.vector_run
    scalar_stats = dataclasses.asdict(scalar.stats)
    vector_stats = dataclasses.asdict(vector.stats)
    for field_name in sorted(scalar_stats):
        claims.equal(f"stats.{field_name} vectorized == scalar",
                     vector_stats.get(field_name),
                     scalar_stats[field_name])

    scalar_resident = [t.trace_id for t in
                       scalar.trace_cache.resident_traces()]
    vector_resident = [t.trace_id for t in
                       vector.trace_cache.resident_traces()]
    claims.equal("trace-cache working set vectorized == scalar",
                 vector_resident, scalar_resident)
    claims.equal("trace-cache occupancy vectorized == scalar",
                 vector.trace_cache.occupancy(),
                 scalar.trace_cache.occupancy())

    scalar_events = bundle.scalar_events
    vector_events = bundle.vector_events
    claims.equal("event-stream length vectorized == scalar",
                 len(vector_events), len(scalar_events))
    for index, (a, b) in enumerate(zip(scalar_events, vector_events)):
        if a != b:
            claims.violate("event streams diverge", index=index,
                           scalar_event=str(a.get("event")),
                           vectorized_event=str(b.get("event")))
    return claims.done()


#: The pluggable oracle registry, in evaluation order.
ORACLES: dict[str, Callable[[CheckBundle], list[Violation]]] = {
    "determinism": check_determinism,
    "conservation": check_conservation,
    "intervals": check_intervals,
    "cfg": check_cfg,
    "metamorphic": check_metamorphic,
    "roundtrip": check_roundtrip,
    "coverage": check_coverage,
    "simulator": check_simulator,
}


def oracle_names() -> tuple[str, ...]:
    """Every registered oracle, in evaluation order."""
    return tuple(ORACLES)
