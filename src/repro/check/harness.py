"""Run the oracle catalogue over one profile / one experiment spec.

:func:`check_profile` is the core entry point: it builds a
:class:`~repro.check.oracles.CheckBundle` for a
:class:`~repro.workloads.WorkloadProfile` and evaluates the requested
oracles, returning a :class:`CheckReport`.

:func:`execute_check` adapts it to the experiment-runner currency: an
``ExperimentSpec(kind="check")`` names its workload through the
``benchmark`` field (a SPECint95 stand-in or a ``fuzz-<seed>`` name)
and its validation verdict becomes the spec's flat ``RunResult``
metrics.  Because verdicts are a pure function of the spec, they are
content-addressable: a warm ``repro fuzz`` rerun serves every verdict
from the result cache without executing anything.

Cached verdicts always carry *every* oracle's violation count, so an
``--oracle`` subset filters cached entries instead of invalidating
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.check.oracles import ORACLES, CheckBundle, Violation
from repro.workloads import WorkloadProfile, profile_for
from repro.workloads.generator import WorkloadVerificationError

#: Default per-case instruction budget for differential validation —
#: deliberately smaller than the exhibit default (60k): a fuzz sweep
#: runs hundreds of cases and each case replays the stream through
#: several model legs.
DEFAULT_CHECK_INSTRUCTIONS = 8_000

#: Violation messages carried inside RunResult metrics (JSON strings).
MAX_METRIC_MESSAGES = 10

#: Pseudo-oracle name for generation/verifier-gate failures.
GENERATE_ORACLE = "generate"


@dataclass
class CheckReport:
    """One case's verdict: which oracles ran, what they found."""

    profile: WorkloadProfile
    instructions: int
    tc_entries: int
    pb_entries: int
    static_seed: bool
    oracles: tuple[str, ...]
    mechanism: str = "preconstruction"
    simulator: str = "scalar"
    violations: list[Violation] = field(default_factory=list)
    summary: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_oracle(self) -> dict[str, int]:
        """Violation count per oracle (including zeroes for ran ones)."""
        counts = {name: 0 for name in self.oracles}
        counts.setdefault(GENERATE_ORACLE, 0)
        for violation in self.violations:
            counts[violation.oracle] = counts.get(violation.oracle, 0) + 1
        return counts

    def to_metrics(self) -> dict[str, Any]:
        """Flat, JSON-serialisable metrics for a ``kind="check"`` spec."""
        metrics: dict[str, Any] = {
            "violations": len(self.violations),
        }
        for name, count in self.by_oracle().items():
            metrics[f"oracle_{name}_violations"] = count
        metrics["violation_messages"] = [
            str(v) for v in self.violations[:MAX_METRIC_MESSAGES]]
        for key in ("instructions", "traces", "cycles",
                    "trace_misses_per_ki", "trace_hit_fraction",
                    "buffer_hits"):
            if key in self.summary:
                metrics[key] = self.summary[key]
        return metrics


def resolve_oracles(oracles: Optional[Sequence[str]]) -> tuple[str, ...]:
    """Validate and order an oracle selection (``None`` = all)."""
    if oracles is None:
        return tuple(ORACLES)
    unknown = [name for name in oracles if name not in ORACLES]
    if unknown:
        raise ValueError(f"unknown oracle(s) {unknown}; "
                         f"choose from {tuple(ORACLES)}")
    # Registry order, deduplicated.
    selected = set(oracles)
    return tuple(name for name in ORACLES if name in selected)


def check_profile(profile: WorkloadProfile,
                  instructions: int = DEFAULT_CHECK_INSTRUCTIONS, *,
                  tc_entries: int = 128, pb_entries: int = 64,
                  static_seed: bool = False,
                  mechanism: str = "preconstruction",
                  simulator: str = "scalar",
                  oracles: Optional[Sequence[str]] = None) -> CheckReport:
    """Run ``profile`` through the full stack and evaluate ``oracles``.

    ``mechanism`` selects the frontend fill/prefetch mechanism the
    timing legs run under (:mod:`repro.frontends`), so every mechanism
    in the zoo inherits the cross-model invariants.  ``simulator``
    selects the kernel the primary timing leg runs under; the
    ``simulator`` oracle always compares both kernels regardless.

    A workload that fails the generator's verifier gate is itself a
    finding (pseudo-oracle ``"generate"``) — the remaining oracles are
    skipped since there is no image to run.
    """
    selected = resolve_oracles(oracles)
    report = CheckReport(profile=profile, instructions=instructions,
                         tc_entries=tc_entries, pb_entries=pb_entries,
                         static_seed=static_seed, oracles=selected,
                         mechanism=mechanism, simulator=simulator)
    bundle = CheckBundle(profile, instructions, tc_entries=tc_entries,
                         pb_entries=pb_entries, static_seed=static_seed,
                         mechanism=mechanism, simulator=simulator)
    try:
        bundle.workload
    except WorkloadVerificationError as error:
        report.violations.append(Violation(
            GENERATE_ORACLE,
            f"workload failed the verifier gate: {error}",
            {"findings": len(error.findings)}))
        return report
    for name in selected:
        report.violations.extend(ORACLES[name](bundle))
    report.summary = dict(bundle.plain_run.stats.summary())
    return report


def execute_check(spec) -> dict[str, Any]:
    """Metrics payload for an ``ExperimentSpec(kind="check")``.

    Runs every registered oracle (the cached verdict must not depend
    on a caller's oracle selection) over the spec's benchmark at the
    spec's sizing.
    """
    from repro.telemetry import span

    with span("check.case", benchmark=spec.benchmark,
              instructions=spec.instructions):
        profile = profile_for(spec.benchmark, spec.workload_seed)
        report = check_profile(profile, spec.instructions,
                               tc_entries=spec.tc_entries,
                               pb_entries=spec.pb_entries,
                               static_seed=spec.static_seed,
                               mechanism=spec.mechanism,
                               simulator=getattr(spec, "simulator",
                                                 "scalar"))
        return report.to_metrics()
