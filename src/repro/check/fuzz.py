"""The workload fuzzer: seeded sweeps of adversarial check cases.

One fuzz *case* is an ``ExperimentSpec(kind="check")`` whose benchmark
is a ``fuzz-<seed>`` name: the profile is a pure function of the seed
(:func:`repro.workloads.fuzz.fuzz_profile`) and the frontend sizing
(trace-cache / mechanism-budget entries, static seeding, frontend
mechanism) is sampled from the same seed here, so the whole case — and
therefore its verdict — is content-addressable.  A warm rerun of
``python -m repro fuzz`` over the same seed range serves every verdict
from the :class:`~repro.runner.cache.ResultCache` without executing
anything.

Failing cases are shrunk by :mod:`repro.check.minimize` to a minimal
reproducer and (optionally) written out as self-contained repro
scripts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.check.harness import DEFAULT_CHECK_INSTRUCTIONS, resolve_oracles
from repro.check.minimize import MinimizedCase, minimize_case
from repro.frontends import mechanism_names
from repro.runner import ExperimentRunner, ExperimentSpec, ResultCache, RunResult
from repro.workloads import FUZZ_PREFIX, fuzz_profile

#: Decorrelates the frontend-sizing stream from the profile-shape
#: stream (:data:`repro.workloads.fuzz._SHAPE_SALT`).
_CONFIG_SALT = 0xC0FF_EE11

#: Trace-cache sizes a fuzz case may run under.
TC_CHOICES = (32, 64, 128, 256)

#: Preconstruction-buffer sizes a fuzz case may run under (0 = off).
PB_CHOICES = (0, 16, 64, 128)

#: Probability a case enables static region seeding.
STATIC_SEED_PROB = 0.25


def fuzz_case_spec(case_seed: int,
                   instructions: int = DEFAULT_CHECK_INSTRUCTIONS,
                   simulator: Optional[str] = None) -> ExperimentSpec:
    """The deterministic check spec for fuzz case ``case_seed``.

    The frontend mechanism and the simulation kernel are drawn from the
    seed like every other sizing knob, so a fuzz sweep exercises the
    whole competing-frontend zoo — and both kernels — through the same
    oracle catalogue.  Each draw comes *after* the pre-existing ones so
    the knobs sampled for a given seed are unchanged across schema
    bumps.  ``simulator`` forces one kernel instead of drawing
    (``repro fuzz --simulator``).
    """
    from repro.runner.spec import SIMULATOR_KINDS

    rng = random.Random((case_seed << 1) ^ _CONFIG_SALT)
    tc_entries = rng.choice(TC_CHOICES)
    pb_entries = rng.choice(PB_CHOICES)
    static_seed = rng.random() < STATIC_SEED_PROB
    mechanism = rng.choice(mechanism_names())
    drawn_simulator = rng.choice(SIMULATOR_KINDS)
    return ExperimentSpec(
        benchmark=f"{FUZZ_PREFIX}{case_seed}",
        tc_entries=tc_entries,
        pb_entries=pb_entries,
        static_seed=static_seed,
        mechanism=mechanism,
        kind="check",
        instructions=instructions,
        simulator=simulator if simulator is not None else drawn_simulator)


@dataclass
class FuzzFailure:
    """One failing case: the spec, its violations, the shrunk repro."""

    case_seed: int
    spec: ExperimentSpec
    violations: int
    messages: list[str]
    minimized: Optional[MinimizedCase] = None
    script_path: Optional[str] = None

    def format(self) -> str:
        lines = [f"FAIL {self.spec.label}: "
                 f"{self.violations} violation(s)"]
        lines.extend(f"  {message}" for message in self.messages)
        if self.minimized is not None:
            lines.append(f"  minimized: {self.minimized.describe()}")
        if self.script_path:
            lines.append(f"  repro script: {self.script_path}")
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of one fuzz sweep."""

    seeds: int
    seed_base: int
    instructions: int
    oracles: tuple[str, ...]
    cases: int = 0
    cache_hits: int = 0
    wall_seconds: float = 0.0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def total_violations(self) -> int:
        return sum(failure.violations for failure in self.failures)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seeds": self.seeds, "seed_base": self.seed_base,
            "instructions": self.instructions,
            "oracles": list(self.oracles),
            "cases": self.cases, "cache_hits": self.cache_hits,
            "wall_seconds": self.wall_seconds,
            "failures": [{
                "case_seed": failure.case_seed,
                "spec": failure.spec.to_dict(),
                "violations": failure.violations,
                "messages": failure.messages,
                "minimized": (None if failure.minimized is None else {
                    "seed": failure.minimized.profile.seed,
                    "instructions": failure.minimized.instructions,
                    "knobs": failure.minimized.knobs,
                    "failing_oracles": list(failure.minimized.failing_oracles),
                    "probes": failure.minimized.probes,
                }),
                "script_path": failure.script_path,
            } for failure in self.failures],
        }

    def format(self) -> str:
        head = (f"fuzz: {self.cases} cases "
                f"(seeds {self.seed_base}..{self.seed_base + self.seeds - 1}, "
                f"budget {self.instructions}), "
                f"{self.cache_hits} served from cache, "
                f"{self.wall_seconds:.2f}s")
        if self.ok:
            return f"{head}\nall oracles held: 0 violations"
        body = "\n".join(failure.format() for failure in self.failures)
        return (f"{head}\n{len(self.failures)} failing case(s), "
                f"{self.total_violations} violation(s):\n{body}")


def _selected_violations(result: RunResult,
                         oracles: Sequence[str]) -> tuple[int, list[str]]:
    """Violation count/messages restricted to ``oracles``.

    Cached verdicts always carry every oracle's count, so the subset is
    computed here instead of invalidating the cache entry.  Generation
    failures (pseudo-oracle ``generate``) always count.
    """
    watched = set(oracles) | {"generate"}
    count = sum(int(result.metrics.get(f"oracle_{name}_violations", 0))
                for name in watched)
    messages = [message for message
                in result.metrics.get("violation_messages", [])
                if message.partition("]")[0].lstrip("[") in watched]
    return count, messages


def run_fuzz(seeds: int,
             instructions: int = DEFAULT_CHECK_INSTRUCTIONS, *,
             seed_base: int = 0,
             oracles: Optional[Sequence[str]] = None,
             jobs: int = 1,
             cache: Optional[ResultCache] = None,
             progress=None,
             minimize: bool = True,
             failures_dir: Optional[str | Path] = None,
             simulator: Optional[str] = None) -> FuzzReport:
    """Fuzz ``seeds`` cases starting at ``seed_base``.

    Verdicts flow through the parallel :class:`ExperimentRunner` and,
    when ``cache`` is given, the content-addressed result cache.
    Failing cases are minimized (unless ``minimize=False``) against the
    requested oracle subset; with ``failures_dir`` each minimized case
    also writes a self-contained ``repro_fuzz_<seed>.py`` script.
    ``simulator`` forces every case onto one kernel; by default each
    case draws its kernel from its seed.
    """
    if seeds < 1:
        raise ValueError("seeds must be >= 1")
    selected = resolve_oracles(oracles)
    report = FuzzReport(seeds=seeds, seed_base=seed_base,
                        instructions=instructions, oracles=selected)

    specs = [fuzz_case_spec(seed_base + i, instructions, simulator)
             for i in range(seeds)]
    runner = ExperimentRunner(jobs=jobs, cache=cache, progress=progress)
    results = runner.run(specs)
    report.cases = len(results)
    report.cache_hits = runner.report.cache_hits
    report.wall_seconds = runner.report.wall_seconds

    out_dir: Optional[Path] = None
    if failures_dir is not None:
        out_dir = Path(failures_dir)

    for index, (spec, result) in enumerate(zip(specs, results)):
        count, messages = _selected_violations(result, selected)
        if not count:
            continue
        case_seed = seed_base + index
        failure = FuzzFailure(case_seed=case_seed, spec=spec,
                              violations=count, messages=messages)
        if minimize:
            if progress:
                progress(f"minimizing {spec.label} ...")
            failure.minimized = minimize_case(
                fuzz_profile(case_seed), spec.instructions,
                tc_entries=spec.tc_entries, pb_entries=spec.pb_entries,
                static_seed=spec.static_seed, mechanism=spec.mechanism,
                simulator=spec.simulator, oracles=selected)
            if failure.minimized is not None and out_dir is not None:
                out_dir.mkdir(parents=True, exist_ok=True)
                script = out_dir / f"repro_fuzz_{case_seed}.py"
                failure.minimized.write_script(script)
                failure.script_path = str(script)
        report.failures.append(failure)
    return report
