"""Differential validation: workload fuzzer, cross-model oracles, minimizer.

The paper's results rest on the claim that the timing layer replays
exactly the committed instruction stream the architectural model
produces, and that the static CFG agrees with both.  This package
checks that claim *systematically* instead of on a handful of fixed
profiles:

* :mod:`repro.check.oracles` — the pluggable invariant catalogue
  (functional determinism, timing-counter conservation laws,
  interval-metrics consistency, static-CFG containment of every
  executed edge, metamorphic config/observability equalities);
* :mod:`repro.check.harness` — :func:`check_profile` runs one
  :class:`~repro.workloads.WorkloadProfile` through the full stack and
  evaluates oracles; :func:`execute_check` adapts it to
  ``ExperimentSpec(kind="check")`` so fuzz verdicts flow through the
  parallel runner and the content-addressed result cache;
* :mod:`repro.check.fuzz` — the seeded workload fuzzer behind
  ``python -m repro fuzz``;
* :mod:`repro.check.minimize` — shrinks a failing case to a minimal
  reproducer (knobs toward defaults, budget bisected) and emits a
  self-contained repro script.
"""

from repro.check.fuzz import FuzzFailure, FuzzReport, fuzz_case_spec, run_fuzz
from repro.check.harness import (
    DEFAULT_CHECK_INSTRUCTIONS,
    CheckReport,
    check_profile,
    execute_check,
)
from repro.check.minimize import MinimizedCase, knob_diff, minimize_case
from repro.check.oracles import ORACLES, CheckBundle, Violation, oracle_names

__all__ = [
    "CheckBundle", "CheckReport", "DEFAULT_CHECK_INSTRUCTIONS",
    "FuzzFailure", "FuzzReport", "MinimizedCase", "ORACLES", "Violation",
    "check_profile", "execute_check", "fuzz_case_spec", "knob_diff",
    "minimize_case", "oracle_names", "run_fuzz",
]
