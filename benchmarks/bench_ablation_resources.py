"""Ablation: region resource bounds (paper §3.1, §3.3.1).

Two bounds limit a region's preconstruction effort: the fill-up
prefetch cache (static instruction budget per region) and
preconstruction-buffer allocation failures (a trace never displaces a
same-region trace).  This bench sweeps both.
"""

from __future__ import annotations

from conftest import custom_frontend_point, run_once

PREFETCH_SIZES = (64, 256, 1024)
FAILURE_LIMITS = (1, 4, 16)


def test_region_resource_bounds(benchmark, stream_cache):
    def experiment():
        prefetch_rows = {}
        for size in PREFETCH_SIZES:
            result = custom_frontend_point(
                stream_cache, "gcc",
                precon_overrides={"prefetch_cache_instructions": size})
            prefetch_rows[size] = (
                result.stats, result.preconstruction.stats)
        failure_rows = {}
        for limit in FAILURE_LIMITS:
            result = custom_frontend_point(
                stream_cache, "gcc",
                precon_overrides={"buffer_failure_limit": limit})
            failure_rows[limit] = (
                result.stats, result.preconstruction.stats)
        return prefetch_rows, failure_rows

    prefetch_rows, failure_rows = run_once(benchmark, experiment)
    print()
    print("prefetch-cache size sweep (gcc):")
    for size, (stats, precon) in prefetch_rows.items():
        print(f"  {size:5d} instr  miss/KI={stats.trace_miss_rate_per_ki:6.2f}"
              f"  fetch_bound_regions={precon.regions_fetch_bound}")
    print("buffer failure-limit sweep (gcc):")
    for limit, (stats, precon) in failure_rows.items():
        print(f"  limit={limit:2d}  miss/KI={stats.trace_miss_rate_per_ki:6.2f}"
              f"  buffer_bound_regions={precon.regions_buffer_bound}")

    # Smaller prefetch caches terminate more regions at the fetch bound.
    small = prefetch_rows[PREFETCH_SIZES[0]][1].regions_fetch_bound
    large = prefetch_rows[PREFETCH_SIZES[-1]][1].regions_fetch_bound
    assert small >= large
    # All configurations keep preconstruction functional.
    for stats, _ in list(prefetch_rows.values()) + list(failure_rows.values()):
        assert stats.buffer_hits > 0
