"""Ablation: the trace-alignment heuristic (paper §2.2).

The paper forces traces to end a multiple of four instructions beyond a
backward branch so that preconstructed traces *align* with the traces
the processor later demands.  Disabling the heuristic on the
preconstruction side only (demand selection keeps it) makes the two
sides delimit traces differently — preconstructed work should become
nearly useless, which is exactly the paper's motivating argument.

This ablation also checks the milder claim that the heuristic "limits
the overall number of unique traces" when applied uniformly.
"""

from __future__ import annotations

from conftest import custom_frontend_point, run_once
from repro.trace import SelectionConfig


def _both(cache, benchmark_name, align):
    """Run with the alignment heuristic set uniformly to ``align``."""
    selection = SelectionConfig(align_multiple=align)
    result = custom_frontend_point(cache, benchmark_name,
                                   selection=selection)
    return result.stats


def test_alignment_uniform(benchmark, stream_cache):
    """Uniform alignment on/off: preconstruction works either way when
    both sides agree, but the miss rates differ because alignment
    canonicalises trace boundaries."""
    def experiment():
        rows = {}
        for name in ("gcc", "vortex"):
            aligned = _both(stream_cache, name, 4)
            free = _both(stream_cache, name, 0)
            rows[name] = (aligned, free)
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(f"{'bench':8s} {'miss/KI aligned':>16s} {'miss/KI align-off':>18s}"
          f" {'PB hits aligned':>16s} {'PB hits off':>12s}")
    for name, (aligned, free) in rows.items():
        print(f"{name:8s} {aligned.trace_miss_rate_per_ki:16.2f} "
              f"{free.trace_miss_rate_per_ki:18.2f} "
              f"{aligned.buffer_hits:16d} {free.buffer_hits:12d}")
        # Preconstruction functions in both cases (alignment agreed).
        assert aligned.buffer_hits > 0
        assert free.buffer_hits > 0
