"""Extension experiment: dynamic TC/PB partitioning (paper §5.1).

The paper observes gcc prefers a small preconstruction buffer and go a
large one, and suggests (without investigating) dynamically allocating
the split.  This bench implements and evaluates that suggestion with a
hill-climbing controller over a fixed 512-entry budget.

Finding at this reproduction's run scale: the controller tracks the
static optimum's neighbourhood, but repartitioning disturbance (index
reshuffling and recency loss on every boundary move) costs about as
much as adaptation wins — consistent with the paper's choice to leave
the static split in place.  The result is reported for the record.
"""

from __future__ import annotations

from conftest import run_once
from repro.api import (
    DynamicPartitionConfig,
    build_frontend_config,
    run_frontend,
)

TOTAL = 512
STATIC_PBS = (32, 128, 256)


def test_dynamic_vs_static_partitions(benchmark, stream_cache):
    def experiment():
        rows = {}
        for name in ("gcc", "go"):
            image = stream_cache.image(name)
            stream = stream_cache.stream(name)
            statics = {}
            for pb in STATIC_PBS:
                config = build_frontend_config(TOTAL - pb, pb)
                result = run_frontend(image, config, len(stream),
                                      stream=stream)
                statics[pb] = result.stats.trace_miss_rate_per_ki
            dynamic = run_frontend(
                image, build_frontend_config(TOTAL - 128, 128),
                stream=stream, partition=DynamicPartitionConfig())
            events = dynamic.partition_events or []
            rows[name] = (statics, dynamic.stats.trace_miss_rate_per_ki,
                          [event.pb_entries for event in events])
        return rows

    rows = run_once(benchmark, experiment)
    print()
    for name, (statics, dynamic, trajectory) in rows.items():
        static_text = " ".join(f"pb{pb}={rate:.2f}"
                               for pb, rate in statics.items())
        print(f"{name:6s} static: {static_text}  dynamic={dynamic:.2f}  "
              f"trajectory={trajectory}")
        best = min(statics.values())
        worst = max(statics.values())
        # The controller must not blow past the static envelope.
        assert dynamic <= worst * 1.15, (name, dynamic, worst)
        # ...and should stay in the static optimum's neighbourhood.
        assert dynamic <= best * 1.5, (name, dynamic, best)
