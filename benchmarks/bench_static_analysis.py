"""Benchmark: static-analysis wall time on the largest workloads.

The analyzer runs inside the generator gate on every ``generate()``
call, so its cost is paid by every experiment in the harness — this
benchmark keeps that cost visible.  It measures the full pipeline
(CFG recovery, dominators/loops, call graph, all lint rules, seed
computation) on the two largest generated images.
"""

from __future__ import annotations

from conftest import run_once
from repro.static import analyze_image
from repro.workloads import build_workload

#: The two largest profiles by static code size.
LARGEST = ("gcc", "vortex")


def test_static_analysis_wall_time(benchmark):
    """Full static pipeline over the largest images."""
    workloads = {name: build_workload(name) for name in LARGEST}

    def experiment():
        return {name: analyze_image(wl.image, intents=wl.branch_intents,
                                    name=name)
                for name, wl in workloads.items()}

    reports = run_once(benchmark, experiment)
    print()
    print(f"{'bench':8s} {'insts':>7s} {'blocks':>7s} {'loops':>6s} "
          f"{'seeds':>6s} {'findings':>9s}")
    for name, report in reports.items():
        print(f"{name:8s} {report.instructions:7d} "
              f"{report.basic_blocks:7d} {report.natural_loops:6d} "
              f"{len(report.seeds):6d} {len(report.findings):9d}")
        assert report.findings == []
        assert report.seeds
