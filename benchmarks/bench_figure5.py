"""Figure 5: trace-cache miss rate vs combined TC+PB size, per benchmark.

Paper claims reproduced here (shape, not absolute numbers):

* for gcc/go (largest working sets), adding a preconstruction buffer
  beats spending the same area on more trace cache;
* gcc prefers a small PB with most area in the TC; go benefits from a
  relatively large PB;
* compress/ijpeg have tiny working sets and little room to improve;
* vortex shows the largest relative miss-rate reduction.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.analysis import figure5_sweep, format_figure5
from repro.workloads import SPEC95_NAMES

#: Reduced grid for the harness (full paper grid via REPRO_FIG5_FULL=1).
TC_SIZES = (64, 128, 256, 512, 1024)
PB_SIZES = (0, 32, 128, 256)


@pytest.mark.parametrize("benchmark_name", SPEC95_NAMES)
def test_figure5(benchmark, stream_cache, benchmark_name):
    """One Figure 5 panel: the miss-rate grid for one benchmark."""
    points = run_once(benchmark, figure5_sweep, stream_cache,
                      benchmark_name, TC_SIZES, PB_SIZES)
    print()
    print(format_figure5(benchmark_name, points))

    by_key = {(p.tc_entries, p.pb_entries): p.miss_per_ki for p in points}
    # Sanity of the curves: TC-only miss rate is monotonically
    # non-increasing in size (allowing small measurement jitter).
    tc_only = [by_key[(tc, 0)] for tc in TC_SIZES]
    for small, large in zip(tc_only, tc_only[1:]):
        assert large <= small * 1.10
    # Preconstruction reduces misses at the same TC size for the
    # stressed benchmarks.
    if benchmark_name in ("gcc", "go", "vortex"):
        assert by_key[(256, 256)] < by_key[(256, 0)]
