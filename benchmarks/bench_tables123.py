"""Tables 1-3: I-cache traffic with and without preconstruction.

Paper claims reproduced here (shape):

* Table 1 — instructions supplied by the I-cache drop by >20% for
  gcc/go when a 512-entry TC is split into 256 TC + 256 PB;
* Table 2 — preconstruction's own fetches increase total I-cache
  misses (roughly doubling them), but the absolute numbers stay small;
* Table 3 — instructions supplied by I-cache *misses* drop by more
  than total I-cache instructions: the preconstruction engine acts as
  an instruction prefetcher for the slow path.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import compute_tables, format_all_tables


def test_tables_1_2_3(benchmark, stream_cache):
    result = run_once(benchmark, compute_tables, stream_cache)
    print()
    print(format_all_tables(result))

    for row in result.table1:
        # Table 1 shape: slow-path instruction supply decreases.
        assert row.preconstruction < row.baseline
    for row in result.table2:
        # Table 2 shape: total I-cache misses increase (extra traffic).
        assert row.preconstruction > row.baseline
    for row in result.table3:
        # Table 3 shape: slow-path exposure to misses decreases.
        assert row.preconstruction < row.baseline
