"""Shared fixtures for the experiment benchmarks.

Each benchmark regenerates one of the paper's tables/figures.  The
instruction budget is deliberately modest so the full harness runs in
minutes; scale it up with ``REPRO_BENCH_INSTRUCTIONS`` for tighter
statistics (the shapes are stable from ~50k instructions up).
"""

from __future__ import annotations

import os

import pytest

from repro.api import DEFAULT_INSTRUCTIONS, StreamCache


def bench_instructions() -> int:
    return int(os.environ.get("REPRO_BENCH_INSTRUCTIONS",
                              str(DEFAULT_INSTRUCTIONS)))


@pytest.fixture(scope="session")
def stream_cache() -> StreamCache:
    """Session-wide stream cache: each benchmark's dynamic stream is
    generated once and replayed across all configurations."""
    return StreamCache(instructions=bench_instructions())


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    These are whole-experiment reproductions, not microbenchmarks;
    repeated rounds would only re-measure simulator runtime.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def custom_frontend_point(cache, benchmark_name, *, tc_entries=256,
                          pb_entries=256, selection=None,
                          precon_overrides=None):
    """Frontend run with ablation overrides on the standard config."""
    from repro.api import FrontendConfig, PreconstructionConfig, run_frontend
    from repro.trace import SelectionConfig, TraceCacheConfig

    precon = None
    if pb_entries:
        precon = PreconstructionConfig(buffer_entries=pb_entries,
                                       **(precon_overrides or {}))
    config = FrontendConfig(
        trace_cache=TraceCacheConfig(entries=tc_entries),
        preconstruction=precon,
        selection=selection or SelectionConfig())
    result = run_frontend(cache.image(benchmark_name), config,
                          cache.instructions,
                          stream=cache.stream(benchmark_name))
    return result
