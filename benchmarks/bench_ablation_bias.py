"""Ablation: the biased-branch path-pruning heuristic (paper §2.1).

"To reduce [the number of paths], we use a heuristic that follows
highly-biased branches only through their dominant direction."  This
bench compares that policy against exploring both directions at every
branch and against static taken/not-taken policies, on the benchmark
with the most biased branches (vortex) and the least (go).
"""

from __future__ import annotations

from conftest import custom_frontend_point, run_once

POLICIES = ("biased", "both", "taken", "not_taken")


def test_branch_policy(benchmark, stream_cache):
    def experiment():
        rows = {}
        for name in ("vortex", "go"):
            rows[name] = {}
            for policy in POLICIES:
                result = custom_frontend_point(
                    stream_cache, name,
                    precon_overrides={"constructor": _constructor(policy)})
                rows[name][policy] = result.stats
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(f"{'bench':8s} " + " ".join(f"{p:>10s}" for p in POLICIES)
          + "   (miss/KI)")
    for name, by_policy in rows.items():
        print(f"{name:8s} " + " ".join(
            f"{by_policy[p].trace_miss_rate_per_ki:10.2f}"
            for p in POLICIES))

    # The bias heuristic must at least match the static single-direction
    # policies (10% tolerance: at the harness budget the strongly-biased
    # benchmark's absolute miss counts are small enough to be noisy).
    vortex = rows["vortex"]
    assert (vortex["biased"].trace_miss_rate_per_ki
            <= vortex["taken"].trace_miss_rate_per_ki * 1.10)
    assert (vortex["biased"].trace_miss_rate_per_ki
            <= vortex["not_taken"].trace_miss_rate_per_ki * 1.10)
    # On the weakly-biased benchmark the gap is unambiguous.
    go = rows["go"]
    assert (go["biased"].trace_miss_rate_per_ki
            < go["taken"].trace_miss_rate_per_ki)
    assert (go["biased"].trace_miss_rate_per_ki
            < go["not_taken"].trace_miss_rate_per_ki)


def _constructor(policy: str):
    from repro.core import ConstructorConfig
    return ConstructorConfig(branch_policy=policy)
