"""Hot-path wall-clock benchmark: the seeded speedup trajectory.

Unlike the exhibit benchmarks (which reproduce a figure or table and
time themselves incidentally), this one exists purely to measure the
simulator's hot path: it cold-runs the ``repro bench --quick``
workload — the gcc+go Figure-5 panel, no result cache, fresh stream
cache — and checks the measured time against the pinned pre-overhaul
baseline recorded in :mod:`repro.runner.bench`.

The speedup assertion is deliberately loose (half the CLI's 2x
acceptance bar) because pytest-benchmark machines vary; the precise
gate lives in ``repro bench`` + ``BENCH_hotpath.json``.
"""

from __future__ import annotations

from conftest import run_once
from repro.runner.bench import BASELINE_SECONDS, format_bench, run_bench


def test_hotpath_quick(benchmark):
    """Cold quick-mode bench run, timed end to end."""
    payload = run_once(benchmark, run_bench, quick=True)
    print()
    print(format_bench(payload))

    section = payload["sections"]["figure5"]
    assert section["specs"] == 40
    assert section["baseline_seconds"] == BASELINE_SECONDS[
        ("quick", "figure5")]
    # The overhaul bought >=2x on the baseline machine; allow generous
    # headroom for slower CI hosts while still catching a regression
    # back to the pre-overhaul hot path.
    assert section["speedup"] >= 1.0
