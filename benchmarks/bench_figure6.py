"""Figure 6: overall performance improvement from preconstruction.

Paper claim (shape): for gcc, go, perl and vortex, adding
preconstruction at equal trace-storage area (256-entry TC vs 128 TC +
128 PB) improves performance by a few percent, with the benefit largest
for the benchmarks whose miss rate drops most (vortex, gcc).
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import figure6, format_figure6


def test_figure6(benchmark, stream_cache):
    results = run_once(benchmark, figure6, stream_cache)
    print()
    print(format_figure6(results))

    by_bench = {r.benchmark: r.speedup_percent for r in results}
    # The stressed, biased benchmarks see a clear gain...
    assert by_bench["vortex"] > 1.0
    assert by_bench["gcc"] > 0.5
    # ...and nothing collapses: any loss stays within a few percent
    # (halving the TC is a real cost the PB must buy back).
    for name, speedup in by_bench.items():
        assert speedup > -4.0, (name, speedup)
