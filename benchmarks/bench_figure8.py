"""Figure 8: the extended pipeline model (preconstruction +
preprocessing).

Paper claims reproduced here (shape):

* preconstruction alone gives a small speedup (2-8% in the paper);
* preprocessing alone gives a larger one (8-12%);
* the combination is at least competitive with the sum of the parts —
  preconstruction is worth more when the backend can consume the extra
  fetch bandwidth.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis import figure8, format_figure8


def test_figure8(benchmark, stream_cache):
    results = run_once(benchmark, figure8, stream_cache)
    print()
    print(format_figure8(results))

    for r in results:
        # Preprocessing helps every benchmark.
        assert r.preproc_percent > 0.5, (r.benchmark, r.preproc_percent)
        # Combined beats preprocessing alone for benchmarks where
        # preconstruction contributed at all.
        if r.precon_percent > 0.5:
            assert r.combined_percent > r.preproc_percent

    # Averaged over the stressed benchmarks, the combined speedup is
    # substantial (the paper reports 12-20%, 14% on average).
    avg_combined = sum(r.combined_percent for r in results) / len(results)
    assert avg_combined > 5.0
