"""Ablation: start-point stack depth and priority order (paper §3.2).

"We have found a stack of depth 16 works well" and newest-first
priority "will tend to preconstruct regions more likely to be
encountered sooner."  This bench sweeps the depth and compares LIFO
(the paper) against FIFO ordering.
"""

from __future__ import annotations

from conftest import custom_frontend_point, run_once

DEPTHS = (4, 8, 16, 32)


def test_stack_depth_and_order(benchmark, stream_cache):
    def experiment():
        depth_rows = {}
        for depth in DEPTHS:
            result = custom_frontend_point(
                stream_cache, "gcc",
                precon_overrides={"start_stack_depth": depth})
            depth_rows[depth] = result.stats
        order_rows = {}
        for order in ("newest_first", "oldest_first"):
            result = custom_frontend_point(
                stream_cache, "gcc",
                precon_overrides={"stack_order": order})
            order_rows[order] = result.stats
        return depth_rows, order_rows

    depth_rows, order_rows = run_once(benchmark, experiment)
    print()
    print("stack depth sweep (gcc):")
    for depth, stats in depth_rows.items():
        print(f"  depth={depth:3d} miss/KI={stats.trace_miss_rate_per_ki:6.2f}"
              f" pb_hits={stats.buffer_hits}")
    print("priority order (gcc):")
    for order, stats in order_rows.items():
        print(f"  {order:13s} miss/KI={stats.trace_miss_rate_per_ki:6.2f}"
              f" pb_hits={stats.buffer_hits}")

    # Preconstruction functions at every depth; deeper stacks shouldn't
    # be dramatically worse than the paper's 16.
    paper = depth_rows[16].trace_miss_rate_per_ki
    for depth, stats in depth_rows.items():
        assert stats.buffer_hits > 0
        assert stats.trace_miss_rate_per_ki < paper * 1.5
    # Newest-first is at least as good as FIFO (paper's design point).
    assert (order_rows["newest_first"].trace_miss_rate_per_ki
            <= order_rows["oldest_first"].trace_miss_rate_per_ki * 1.10)
