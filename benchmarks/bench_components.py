"""Microbenchmarks of the simulation substrate itself.

Unlike the experiment benches (which run once), these measure the raw
throughput of the hot components with real pytest-benchmark rounds —
useful for catching performance regressions in the simulator.
"""

from __future__ import annotations

import pytest

from repro.branch import BimodalPredictor, NextTracePredictor
from repro.engine import FunctionalEngine
from repro.trace import TraceCache, traces_of_stream
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def compress_image():
    return build_workload("compress").image


@pytest.fixture(scope="module")
def compress_stream(compress_image):
    return FunctionalEngine(compress_image).run(20_000)


def test_functional_engine_throughput(benchmark, compress_image):
    def run():
        return FunctionalEngine(compress_image).run(10_000)

    stream = benchmark(run)
    assert len(stream) == 10_000


def test_trace_selection_throughput(benchmark, compress_stream):
    traces = benchmark(traces_of_stream, compress_stream)
    assert sum(len(t) for t in traces) == len(compress_stream)


def test_trace_cache_throughput(benchmark, compress_stream):
    traces = traces_of_stream(compress_stream)

    def churn():
        cache = TraceCache()
        hits = 0
        for trace in traces:
            if cache.lookup(trace.trace_id) is None:
                cache.insert(trace)
            else:
                hits += 1
        return hits

    hits = benchmark(churn)
    assert hits > 0


def test_bimodal_throughput(benchmark, compress_stream):
    branches = [(r.pc, r.taken) for r in compress_stream
                if r.inst.is_conditional_branch]

    def train():
        predictor = BimodalPredictor()
        correct = 0
        for pc, taken in branches:
            correct += predictor.predict(pc) == taken
            predictor.update(pc, taken)
        return correct

    correct = benchmark(train)
    assert correct > len(branches) // 2


def test_next_trace_predictor_throughput(benchmark, compress_stream):
    ids = [t.trace_id for t in traces_of_stream(compress_stream)]

    def train():
        predictor = NextTracePredictor()
        correct = 0
        for trace_id in ids:
            predicted = predictor.predict()
            correct += predicted == trace_id
            predictor.update(trace_id, predicted)
        return correct

    correct = benchmark(train)
    assert correct > 0
