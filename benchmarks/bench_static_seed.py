"""Benchmark: dynamic vs static preconstruction start points (§3.2).

The paper seeds regions from the *dynamic* start-point stack (call
returns and taken-backward-branch fall-throughs observed at dispatch).
The static analyzer derives the same two cue kinds from the recovered
CFG without executing anything.  This experiment runs the Table
configuration (256-entry TC + 256-entry PB) both ways and reports how
the statically seeded constructor compares against the paper's
dynamic stack.
"""

from __future__ import annotations

from conftest import run_once
from repro.analysis.tables import PRECON, TABLE_BENCHMARKS
from repro.api import build_frontend_config, run_frontend


def _point(cache, benchmark_name, static_seed):
    tc_entries, pb_entries = PRECON
    config = build_frontend_config(tc_entries, pb_entries,
                                   static_seed=static_seed)
    return run_frontend(cache.image(benchmark_name), config,
                        cache.instructions,
                        stream=cache.stream(benchmark_name))


def test_static_vs_dynamic_seeding(benchmark, stream_cache):
    """Static seeds keep the constructors fed, but the paper's
    newest-first dynamic stack prioritises the regions the fetch
    engine will actually reach next."""
    def experiment():
        rows = {}
        for name in TABLE_BENCHMARKS:
            dynamic = _point(stream_cache, name, static_seed=False)
            static = _point(stream_cache, name, static_seed=True)
            rows[name] = (dynamic, static)
        return rows

    rows = run_once(benchmark, experiment)
    print()
    print(f"{'bench':8s} {'miss/KI dyn':>12s} {'miss/KI static':>15s} "
          f"{'PB hits dyn':>12s} {'PB hits static':>15s} "
          f"{'seeds offered':>14s} {'regions':>8s}")
    for name, (dynamic, static) in rows.items():
        dyn_precon = dynamic.preconstruction.stats
        static_precon = static.preconstruction.stats
        print(f"{name:8s} {dynamic.stats.trace_miss_rate_per_ki:12.2f} "
              f"{static.stats.trace_miss_rate_per_ki:15.2f} "
              f"{dynamic.stats.buffer_hits:12d} "
              f"{static.stats.buffer_hits:15d} "
              f"{static_precon.static_seeds_offered:14d} "
              f"{static_precon.regions_started:8d}")
        # The static queue actually feeds the constructors...
        assert static_precon.static_seeds_offered > 0
        assert static_precon.regions_started > 0
        # ...and never touches the dynamic baseline.
        assert dyn_precon.static_seeds_offered == 0
        # Both modes produce working preconstruction.
        assert dynamic.stats.buffer_hits > 0
        assert static.stats.buffer_hits > 0
