#!/usr/bin/env python3
"""The extended pipeline model: preconstruction + preprocessing (paper §6).

Runs the full trace-processor timing model in the four Figure 8
configurations — baseline, preconstruction only, preprocessing only,
and both — and reports IPC and speedups, demonstrating that the two
trace-specific mechanisms attack different bottlenecks (instruction
supply vs execution bandwidth).

Run:  python examples/extended_pipeline.py [benchmark] [instructions]
"""

from __future__ import annotations

import sys

from repro.api import ExperimentSpec, sweep


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "vortex"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000
    print(f"benchmark={benchmark}, {instructions} instructions")

    configs = [
        ("baseline (TC 256)", dict(tc_entries=256)),
        ("preconstruction (TC 128 + PB 128)",
         dict(tc_entries=128, pb_entries=128)),
        ("preprocessing (TC 256)",
         dict(tc_entries=256, preprocess=True)),
        ("both (TC 128 + PB 128)",
         dict(tc_entries=128, pb_entries=128, preprocess=True)),
    ]
    specs = [ExperimentSpec(benchmark=benchmark, kind="processor",
                            instructions=instructions, **kwargs)
             for _, kwargs in configs]
    results = sweep(specs)

    base_cycles = None
    print(f"\n{'configuration':36s} {'IPC':>7s} {'cycles':>9s} "
          f"{'miss/KI':>8s} {'speedup':>8s}")
    for (label, _), result in zip(configs, results):
        metrics = result.metrics
        if base_cycles is None:
            base_cycles = metrics["cycles"]
        speedup = 100 * (base_cycles / metrics["cycles"] - 1)
        print(f"{label:36s} {metrics['ipc']:7.3f} {metrics['cycles']:9d} "
              f"{metrics['trace_misses_per_ki']:8.2f} {speedup:+7.1f}%")

    print("\nThe mechanisms are complementary: preconstruction raises the")
    print("peak instruction supply rate, preprocessing raises the rate at")
    print("which the execution engine consumes it.")


if __name__ == "__main__":
    main()
