#!/usr/bin/env python3
"""Capacity study: how should trace storage area be split?

The paper's central design question (Figure 5): given a fixed trace
storage budget, is it better spent entirely on the trace cache or split
between the trace cache and preconstruction buffers?  This example
sweeps the split for one benchmark at several total budgets and prints
the best division, reproducing the paper's observation that gcc prefers
a small preconstruction buffer while go profits from a larger one.

Run:  python examples/capacity_study.py [benchmark] [instructions]
"""

from __future__ import annotations

import sys

from repro.api import ExperimentSpec, sweep

#: (total entries) -> candidate (tc, pb) splits.
SPLITS = {
    256: ((256, 0), (192, 64), (128, 128)),
    512: ((512, 0), (384, 128), (256, 256)),
    1024: ((1024, 0), (768, 256), (512, 512)),
}


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "go"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000
    print(f"benchmark={benchmark}, {instructions} instructions")

    specs = [ExperimentSpec(benchmark=benchmark, tc_entries=tc,
                            pb_entries=pb, instructions=instructions)
             for splits in SPLITS.values() for tc, pb in splits]
    lookup = {r.spec: r for r in sweep(specs)}

    print(f"\n{'total':>6s} {'TC':>6s} {'PB':>6s} {'miss/KI':>9s} "
          f"{'vs TC-only':>11s}")
    for total, splits in SPLITS.items():
        baseline = None
        best = None
        for tc, pb in splits:
            spec = ExperimentSpec(benchmark=benchmark, tc_entries=tc,
                                  pb_entries=pb, instructions=instructions)
            miss = lookup[spec].metrics["trace_misses_per_ki"]
            if pb == 0:
                baseline = miss
            delta = (100 * (miss - baseline) / baseline
                     if baseline else 0.0)
            print(f"{total:6d} {tc:6d} {pb:6d} {miss:9.2f} {delta:+10.1f}%")
            if best is None or miss < best[0]:
                best = (miss, tc, pb)
        print(f"       best split for {total} entries: "
              f"TC={best[1]}, PB={best[2]}\n")


if __name__ == "__main__":
    main()
