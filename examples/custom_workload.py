#!/usr/bin/env python3
"""Build a custom workload and watch the preconstruction engine work.

Shows the library's lower-level APIs: write a program in assembly (the
paper's Figure 2/3 example shape), execute it, partition the stream
into traces, and drive the preconstruction engine directly to inspect
the regions it opens and the traces it builds.

Run:  python examples/custom_workload.py
"""

from __future__ import annotations

from repro.api import (
    BimodalPredictor,
    FunctionalEngine,
    InstructionCache,
    PreconstructionConfig,
    PreconstructionEngine,
    ProgramImage,
    TraceCache,
    assemble,
    traces_of_stream,
)

# The paper's Figure 2 example: a call to a procedure with a loop and a
# diamond, followed by a loop and tail code in the caller.
SOURCE = """
main:
    addi r9, r0, 50        # outer repetitions
outer:
    addi r1, r0, 0
    jal  f                 # JAL: pushes a region start point
after_call:
    addi r5, r0, 0         # block h
loop_i:
    addi r5, r5, 1         # block i
    addi r6, r5, 0
    blt  r5, r2, loop_i    # i-loop back edge: pushes a start point
    addi r8, r0, 7         # block j
    addi r9, r9, -1
    bne  r9, r0, outer
    jr   ra
f:
    addi r2, r0, 6         # block b
loop_c:
    addi r1, r1, 1         # block c
    blt  r1, r2, loop_c    # Br1: loop back edge
    andi r3, r1, 1         # block d
    beq  r3, r0, f_else
    addi r4, r0, 1         # block e
    j    f_join
f_else:
    addi r4, r0, 2         # block f
f_join:
    add  r4, r4, r1        # block g
    jr   ra
"""


def main() -> None:
    instructions, labels = assemble(SOURCE, base=0x1000)
    image = ProgramImage(instructions=instructions, code_base=0x1000,
                         entry=0x1000, labels=labels)
    stream = FunctionalEngine(image).run(5000)
    traces = traces_of_stream(stream)
    print(f"executed {len(stream)} instructions -> {len(traces)} traces "
          f"({len({t.trace_id for t in traces})} unique)")

    # Wire up a preconstruction engine and drive it by hand.
    icache = InstructionCache()
    trace_cache = TraceCache()
    bimodal = BimodalPredictor()
    engine = PreconstructionEngine(
        image=image, icache=icache, bimodal=bimodal,
        trace_cache=trace_cache,
        config=PreconstructionConfig(buffer_entries=64))

    hits = 0
    for trace in traces:
        if trace_cache.lookup(trace.trace_id) is None:
            if engine.probe_and_promote(trace.trace_id) is not None:
                hits += 1
            else:
                trace_cache.insert(trace)  # demand fill
        engine.observe_dispatch(trace)
        engine.tick(idle_cycles=4)  # pretend 4 idle slow-path cycles
        # Train the bias oracle like the retire stage would.
        index = 0
        for pc, inst in zip(trace.pcs, trace.instructions):
            if inst.is_conditional_branch:
                bimodal.update(pc, trace.trace_id.outcomes[index])
                index += 1

    stats = engine.stats
    print(f"\nregions started:   {stats.regions_started}")
    print(f"regions completed: {stats.regions_completed}")
    print(f"regions abandoned (processor caught up): "
          f"{stats.regions_abandoned}")
    print(f"traces constructed: {stats.traces_constructed} "
          f"({stats.traces_duplicate} already cached)")
    print(f"preconstructed traces used by the processor: {hits}")
    print("\nA program this small lives in the trace cache after one "
          "iteration, so the\nengine's work is mostly duplicate detection "
          "— the mechanics are the point\nhere.  See examples/quickstart.py "
          "for a workload where preconstruction pays.")


if __name__ == "__main__":
    main()
