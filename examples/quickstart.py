#!/usr/bin/env python3
"""Quickstart: measure what trace preconstruction buys on one benchmark.

Builds the synthetic ``gcc`` stand-in workload, runs the trace-processor
frontend with and without preconstruction at equal total trace storage,
and prints the paper's headline metric (trace-cache misses per 1000
instructions) plus the supporting I-cache traffic numbers.

Run:  python examples/quickstart.py [benchmark] [instructions]
"""

from __future__ import annotations

import sys

from repro.api import SPEC95_NAMES, ExperimentSpec, sweep


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000
    if benchmark not in SPEC95_NAMES:
        raise SystemExit(f"unknown benchmark {benchmark!r}; "
                         f"choose from {', '.join(SPEC95_NAMES)}")

    print(f"benchmark={benchmark}, {instructions} instructions")

    print("\nrunning: 512-entry trace cache, no preconstruction")
    print("running: 256-entry trace cache + 256-entry preconstruction "
          "buffer (equal area) ...")
    base_spec = ExperimentSpec(benchmark=benchmark, tc_entries=512,
                               instructions=instructions)
    precon_spec = base_spec.replace(tc_entries=256, pb_entries=256)
    base, precon = (r.metrics for r in sweep([base_spec, precon_spec]))

    rows = [
        ("trace misses / 1000 instr", "trace_misses_per_ki"),
        ("I-cache instr / 1000 instr", "icache_instructions_per_ki"),
        ("I-cache misses / 1000 instr", "icache_misses_per_ki"),
        ("miss-supplied instr / 1000", "icache_miss_instructions_per_ki"),
    ]
    print(f"\n{'metric':30s} {'TC-512':>10s} {'256+256':>10s} {'change':>9s}")
    for name, key in rows:
        a, b = base[key], precon[key]
        change = 100 * (b - a) / a if a else 0.0
        print(f"{name:30s} {a:10.2f} {b:10.2f} {change:+8.1f}%")
    print(f"\npreconstruction-buffer hits: {precon['buffer_hits']}")
    print(f"next-trace predictor accuracy: {precon['ntp_accuracy']:.1%}")


if __name__ == "__main__":
    main()
