#!/usr/bin/env python3
"""Quickstart: measure what trace preconstruction buys on one benchmark.

Builds the synthetic ``gcc`` stand-in workload, runs the trace-processor
frontend with and without preconstruction at equal total trace storage,
and prints the paper's headline metric (trace-cache misses per 1000
instructions) plus the supporting I-cache traffic numbers.

Run:  python examples/quickstart.py [benchmark] [instructions]
"""

from __future__ import annotations

import sys

from repro.analysis import StreamCache, run_frontend_point
from repro.workloads import SPEC95_NAMES


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 60_000
    if benchmark not in SPEC95_NAMES:
        raise SystemExit(f"unknown benchmark {benchmark!r}; "
                         f"choose from {', '.join(SPEC95_NAMES)}")

    print(f"benchmark={benchmark}, {instructions} instructions")
    cache = StreamCache(instructions=instructions)

    print("\nrunning: 512-entry trace cache, no preconstruction ...")
    base = run_frontend_point(cache, benchmark, tc_entries=512)
    print("running: 256-entry trace cache + 256-entry preconstruction "
          "buffer (equal area) ...")
    precon = run_frontend_point(cache, benchmark, tc_entries=256,
                                pb_entries=256)

    rows = [
        ("trace misses / 1000 instr", base.trace_miss_rate_per_ki,
         precon.trace_miss_rate_per_ki),
        ("I-cache instr / 1000 instr", base.icache_instructions_per_ki,
         precon.icache_instructions_per_ki),
        ("I-cache misses / 1000 instr", base.icache_misses_per_ki,
         precon.icache_misses_per_ki),
        ("miss-supplied instr / 1000", base.icache_miss_instructions_per_ki,
         precon.icache_miss_instructions_per_ki),
    ]
    print(f"\n{'metric':30s} {'TC-512':>10s} {'256+256':>10s} {'change':>9s}")
    for name, a, b in rows:
        change = 100 * (b - a) / a if a else 0.0
        print(f"{name:30s} {a:10.2f} {b:10.2f} {change:+8.1f}%")
    print(f"\npreconstruction-buffer hits: {precon.buffer_hits}")
    print(f"next-trace predictor accuracy: {precon.ntp_accuracy:.1%}")


if __name__ == "__main__":
    main()
