#!/usr/bin/env python3
"""Dynamic trace-storage partitioning study (the paper's future work).

The paper notes gcc wants a small preconstruction buffer and go a large
one, and suggests dynamic allocation without investigating it.  This
example runs the hill-climbing partition controller implemented in
:mod:`repro.sim.dynamic_partition` against the static splits and prints
the adaptation trajectory.

Run:  python examples/dynamic_partition_study.py [instructions]
"""

from __future__ import annotations

import sys

from repro.api import (
    DynamicPartitionConfig,
    StreamCache,
    build_frontend_config,
    run_frontend,
)

TOTAL = 512


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 80_000
    cache = StreamCache(instructions=instructions)
    for benchmark in ("gcc", "go"):
        image = cache.image(benchmark)
        stream = cache.stream(benchmark)
        print(f"\n=== {benchmark} ({instructions} instructions, "
              f"{TOTAL}-entry budget) ===")
        for pb in (32, 128, 256):
            config = build_frontend_config(TOTAL - pb, pb)
            result = run_frontend(image, config, len(stream), stream=stream)
            print(f"static  TC={TOTAL - pb:3d} PB={pb:3d}: "
                  f"{result.stats.trace_miss_rate_per_ki:6.2f} miss/KI")
        result = run_frontend(
            image, build_frontend_config(TOTAL - 128, 128), stream=stream,
            partition=DynamicPartitionConfig(total_entries=TOTAL))
        events = result.partition_events or []
        print(f"dynamic (start PB=128):  "
              f"{result.stats.trace_miss_rate_per_ki:6.2f} miss/KI")
        print(f"  PB trajectory: "
              f"{[event.pb_entries for event in events]}")
        print(f"  epoch miss rates: "
              f"{[round(e.epoch_miss_rate, 4) for e in events]}")
    print("\nObservation: at this run scale the repartitioning disturbance")
    print("(index reshuffling, recency loss) roughly cancels the adaptation")
    print("benefit — consistent with the paper leaving the split static.")


if __name__ == "__main__":
    main()
